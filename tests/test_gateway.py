"""Tests for the asyncio HTTP gateway (``repro.serving.gateway`` / ``.explain``).

Four surfaces, per the test-first program of PR 6:

* **HTTP protocol edge cases** — malformed framing, oversized/truncated
  bodies, unknown routes, wrong methods, bad addresses/hex: every failure
  must answer the correct 4xx with a structured ``{"error": {"code", …}}``
  JSON body (mirroring the JSON-RPC error-shape tests of PR 5).
* **Admission control** — deterministic token-bucket refill through an
  injected clock, bounded-queue load shedding (429 + ``Retry-After`` while
  in-flight requests still complete), request timeouts (504) that do not
  poison the micro-batcher, and graceful drain.
* **Explanations** — the per-model explainer cache builds exactly once,
  explanations are seed-deterministic, and runtime threshold changes flip
  the verdict without invalidating cached SHAP values.
* **Verdict shape** — probability, 0–100 score, threshold verdict, reasons.

Everything runs on the dependency-free ``event_loop_thread`` conftest
fixture (no pytest-asyncio): the server lives on a private loop thread and
tests speak real HTTP over ``http.client`` and raw sockets.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

import numpy as np

from repro.analysis import StaticAnalyzer
from repro.chain import templates
from repro.chain.rpc import SimulatedEthereumNode
from repro.core.config import Scale
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor.pipeline import MonitorStats
from repro.serving import (
    ExplainerCache,
    ExplanationService,
    Gateway,
    GatewayConfig,
    ScoringService,
    ServingConfig,
    TokenBucket,
)

# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


class SlowDetector:
    """Wrap a fitted detector, delaying every vectorized model pass."""

    def __init__(self, detector, delay_s: float):
        self._detector = detector
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._detector, name)

    def predict_proba(self, bytecodes):
        time.sleep(self._delay_s)
        return self._detector.predict_proba(bytecodes)


@pytest.fixture(scope="module")
def module_service():
    return BatchFeatureService()


@pytest.fixture(scope="module")
def fitted_detector(dataset, module_service):
    detector = make_random_forest_hsc(seed=5)
    detector.feature_service = module_service
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


@pytest.fixture()
def node(corpus):
    return SimulatedEthereumNode.from_records(corpus.records)


@pytest.fixture()
def service(fitted_detector, node):
    config = ServingConfig(max_batch=32, max_wait_ms=1.0)
    with ScoringService(fitted_detector, node=node, config=config) as svc:
        yield svc


@pytest.fixture()
def start_gateway(event_loop_thread):
    """Factory starting gateways on the background loop; stops them after."""
    gateways = []

    def _start(service, config=None, **kwargs) -> Gateway:
        gateway = Gateway(service, config=config or GatewayConfig(), **kwargs)
        event_loop_thread.run(gateway.start())
        gateways.append(gateway)
        return gateway

    yield _start
    for gateway in gateways:
        event_loop_thread.run(gateway.stop())


@pytest.fixture()
def gateway(service, start_gateway) -> Gateway:
    return start_gateway(service)


@pytest.fixture()
def explainer(fitted_detector, dataset):
    return ExplanationService(
        fitted_detector,
        background=dataset.bytecodes[:12],
        top_k=4,
        n_permutations=2,
        max_background=4,
        seed=11,
    )


# ---------------------------------------------------------------------------
# HTTP helpers (stdlib only)
# ---------------------------------------------------------------------------


def request(port, method, path, body=None, headers=None, timeout=15.0):
    """One HTTP request via ``http.client``; returns (status, headers, json)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body) if isinstance(body, (dict, list)) else body
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        header_map = {name.lower(): value for name, value in response.getheaders()}
        return response.status, header_map, json.loads(data) if data else None
    finally:
        conn.close()


def raw_request(port, data: bytes, shutdown_write=False, timeout=10.0):
    """Send raw bytes, read to EOF; returns (status, headers, json).

    Only suitable for exchanges the server answers-and-closes (protocol
    errors, ``Connection: close`` requests).
    """
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(data)
        if shutdown_write:
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return _parse_response(b"".join(chunks))


def _parse_response(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.lower()] = value.strip()
    return status, headers, json.loads(body) if body else None


def recv_response(sock):
    """Read one framed response off a kept-alive socket (by Content-Length)."""
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buffer += chunk
    head, _, rest = buffer.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        rest += sock.recv(65536)
    return _parse_response(head + b"\r\n\r\n" + rest[:length])


def assert_error(result, status, code):
    """Every non-2xx body is the structured error envelope."""
    got_status, _, body = result
    assert got_status == status
    assert isinstance(body, dict) and "error" in body
    assert body["error"]["code"] == code
    assert body["error"]["message"]  # human-readable, never empty
    return body


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


class TestGatewayConfig:
    def test_defaults_validate(self):
        config = GatewayConfig()
        assert config.max_inflight >= 1
        assert config.rate_limit_per_s == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backlog": 0},
            {"max_connections": 0},
            {"max_inflight": 0},
            {"rate_limit_per_s": -1.0},
            {"rate_burst": 0},
            {"request_timeout_s": 0.0},
            {"drain_timeout_s": -1.0},
            {"max_body_bytes": 0},
            {"max_header_bytes": 10},
            {"max_batch_items": 0},
            {"explain_top_k": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GatewayConfig(**kwargs)

    def test_from_scale_reads_gateway_knobs(self):
        scale = Scale(
            gateway_max_inflight=9,
            gateway_rate_limit=3.5,
            gateway_rate_burst=7,
            gateway_timeout_s=2.5,
        )
        config = GatewayConfig.from_scale(scale)
        assert config.max_inflight == 9
        assert config.rate_limit_per_s == 3.5
        assert config.rate_burst == 7
        assert config.request_timeout_s == 2.5

    def test_from_scale_accepts_overrides(self):
        config = GatewayConfig.from_scale(Scale(), port=1234, max_batch_items=3)
        assert config.port == 1234
        assert config.max_batch_items == 3

    def test_free_port_fixture_binds_requested_port(
        self, service, start_gateway, free_port
    ):
        gateway = start_gateway(service, config=GatewayConfig(port=free_port))
        assert gateway.port == free_port
        status, _, body = request(free_port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"


# ---------------------------------------------------------------------------
# protocol edge cases
# ---------------------------------------------------------------------------


class TestProtocolEdgeCases:
    def test_unknown_route_404(self, gateway):
        result = request(gateway.port, "GET", "/nope")
        assert_error(result, 404, "not_found")

    def test_wrong_method_405_lists_allowed(self, gateway):
        status, headers, body = request(gateway.port, "GET", "/score/bytecode")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert headers["allow"] == "POST"

    def test_post_on_get_route_405(self, gateway):
        result = request(gateway.port, "POST", "/healthz", body={})
        assert_error(result, 405, "method_not_allowed")

    def test_malformed_request_line_400(self, gateway):
        result = raw_request(gateway.port, b"GARBAGE\r\n\r\n")
        assert_error(result, 400, "malformed_request")

    def test_unsupported_http_version_505(self, gateway):
        result = raw_request(gateway.port, b"GET /healthz HTTP/2.0\r\n\r\n")
        assert_error(result, 505, "http_version_unsupported")

    def test_malformed_header_400(self, gateway):
        result = raw_request(
            gateway.port, b"GET /healthz HTTP/1.1\r\nnot a header line\r\n\r\n"
        )
        assert_error(result, 400, "malformed_header")

    def test_post_without_content_length_411(self, gateway):
        result = raw_request(
            gateway.port,
            b"POST /score/bytecode HTTP/1.1\r\nconnection: close\r\n\r\n",
        )
        assert_error(result, 411, "length_required")

    def test_invalid_content_length_400(self, gateway):
        result = raw_request(
            gateway.port,
            b"POST /score/bytecode HTTP/1.1\r\ncontent-length: abc\r\n\r\n",
        )
        assert_error(result, 400, "invalid_content_length")

    def test_oversized_body_413(self, service, start_gateway):
        gateway = start_gateway(service, config=GatewayConfig(max_body_bytes=64))
        result = raw_request(
            gateway.port,
            b"POST /score/bytecode HTTP/1.1\r\ncontent-length: 5000\r\n\r\n",
        )
        assert_error(result, 413, "body_too_large")

    def test_truncated_body_400(self, gateway):
        result = raw_request(
            gateway.port,
            b"POST /score/bytecode HTTP/1.1\r\ncontent-length: 100\r\n\r\nabc",
            shutdown_write=True,
        )
        assert_error(result, 400, "truncated_body")

    def test_oversized_headers_431(self, service, start_gateway):
        gateway = start_gateway(service, config=GatewayConfig(max_header_bytes=256))
        filler = b"x-filler: " + b"a" * 1000 + b"\r\n"
        result = raw_request(
            gateway.port, b"GET /healthz HTTP/1.1\r\n" + filler + b"\r\n"
        )
        assert_error(result, 431, "headers_too_large")

    def test_get_with_body_400(self, gateway):
        result = request(gateway.port, "GET", "/healthz", body={"x": 1})
        assert_error(result, 400, "unexpected_body")

    def test_malformed_json_400(self, gateway):
        result = request(gateway.port, "POST", "/score/bytecode", body="{nope")
        assert_error(result, 400, "invalid_json")

    def test_non_object_json_400(self, gateway):
        result = request(gateway.port, "POST", "/score/bytecode", body=[1, 2])
        assert_error(result, 400, "invalid_request")

    def test_missing_bytecode_field_400(self, gateway):
        result = request(gateway.port, "POST", "/score/bytecode", body={})
        assert_error(result, 400, "invalid_request")

    def test_bad_hex_bytecode_400(self, gateway):
        result = request(
            gateway.port, "POST", "/score/bytecode", body={"bytecode": "0xzz"}
        )
        assert_error(result, 400, "invalid_bytecode")

    def test_invalid_address_400(self, gateway):
        result = request(
            gateway.port, "POST", "/score/address", body={"address": "0x1234"}
        )
        assert_error(result, 400, "invalid_address")

    def test_unknown_address_404(self, gateway):
        result = request(
            gateway.port, "POST", "/score/address", body={"address": "0x" + "ee" * 20}
        )
        assert_error(result, 404, "unknown_address")

    def test_address_without_node_503(self, fitted_detector, start_gateway):
        with ScoringService(fitted_detector) as nodeless:
            gateway = start_gateway(nodeless)
            result = request(
                gateway.port, "POST", "/score/address", body={"address": "0x" + "ee" * 20}
            )
            assert_error(result, 503, "no_node")

    def test_batch_non_list_400(self, gateway):
        result = request(
            gateway.port, "POST", "/score/batch", body={"bytecodes": "0x60"}
        )
        assert_error(result, 400, "invalid_request")

    def test_batch_too_large_413(self, service, start_gateway):
        gateway = start_gateway(service, config=GatewayConfig(max_batch_items=2))
        result = request(
            gateway.port, "POST", "/score/batch", body={"bytecodes": ["0x60"] * 3}
        )
        assert_error(result, 413, "batch_too_large")

    def test_batch_bad_item_400_names_index(self, gateway):
        result = request(
            gateway.port,
            "POST",
            "/score/batch",
            body={"bytecodes": ["0x6001", "0xzz"]},
        )
        body = assert_error(result, 400, "invalid_bytecode")
        assert "item 1" in body["error"]["message"]

    def test_non_boolean_explain_400(self, gateway):
        result = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": "0x6001", "explain": "yes"},
        )
        assert_error(result, 400, "invalid_request")


# ---------------------------------------------------------------------------
# scoring surface
# ---------------------------------------------------------------------------


class TestScoring:
    def test_score_bytecode_matches_detector(self, gateway, fitted_detector, dataset):
        code = dataset.bytecodes[0]
        status, _, body = request(
            gateway.port, "POST", "/score/bytecode", body={"bytecode": "0x" + code.hex()}
        )
        assert status == 200
        expected = float(fitted_detector.predict_proba([code])[0, 1])
        assert body["probability"] == pytest.approx(expected, abs=0)

    def test_verdict_has_scanner_shape(self, gateway, dataset):
        code = dataset.bytecodes[1]
        status, _, body = request(
            gateway.port, "POST", "/score/bytecode", body={"bytecode": "0x" + code.hex()}
        )
        assert status == 200
        assert set(body) >= {
            "address", "probability", "score", "verdict", "threshold", "cached", "latency_ms",
        }
        assert body["score"] == int(round(body["probability"] * 100))
        assert 0 <= body["score"] <= 100
        assert body["verdict"] in ("phishing", "benign")
        assert (body["verdict"] == "phishing") == (
            body["probability"] >= body["threshold"]
        )

    def test_score_address_roundtrip(self, gateway, corpus, fitted_detector):
        record = corpus.records[0]
        status, _, body = request(
            gateway.port, "POST", "/score/address", body={"address": record.address}
        )
        assert status == 200
        assert body["address"] == record.address
        expected = float(fitted_detector.predict_proba([record.bytecode])[0, 1])
        assert body["probability"] == pytest.approx(expected, abs=0)

    def test_second_request_is_verdict_cache_hit(self, gateway, dataset):
        payload = {"bytecode": "0x" + dataset.bytecodes[2].hex()}
        first = request(gateway.port, "POST", "/score/bytecode", body=payload)[2]
        second = request(gateway.port, "POST", "/score/bytecode", body=payload)[2]
        assert not first["cached"]
        assert second["cached"]
        assert second["probability"] == first["probability"]

    def test_batch_preserves_order(self, gateway, fitted_detector, dataset):
        codes = dataset.bytecodes[:6]
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/batch",
            body={"bytecodes": ["0x" + code.hex() for code in codes]},
        )
        assert status == 200
        assert body["count"] == len(codes)
        expected = fitted_detector.predict_proba(codes)[:, 1]
        got = [verdict["probability"] for verdict in body["verdicts"]]
        assert got == pytest.approx(list(expected), abs=0)

    def test_batch_empty_list_ok(self, gateway):
        status, _, body = request(
            gateway.port, "POST", "/score/batch", body={"bytecodes": []}
        )
        assert status == 200
        assert body == {"verdicts": [], "count": 0}

    def test_keep_alive_serves_two_requests_on_one_connection(self, gateway, dataset):
        conn = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=15)
        try:
            for code in dataset.bytecodes[:2]:
                conn.request(
                    "POST", "/score/bytecode", body=json.dumps({"bytecode": "0x" + code.hex()})
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()
        assert gateway.stats().connections == 1

    def test_healthz_ok(self, gateway):
        status, _, body = request(gateway.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_stats_surface_gateway_and_service(self, gateway, dataset):
        request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": "0x" + dataset.bytecodes[0].hex()},
        )
        status, _, body = request(gateway.port, "GET", "/stats")
        assert status == 200
        assert body["gateway"]["responses_ok"] >= 1
        assert body["gateway"]["requests"] >= 2
        assert body["gateway"]["peak_inflight"] >= 1
        assert body["service"]["requests"] >= 1
        assert "latency_ms_p99" in body["service"]
        assert "monitor" not in body
        assert "explain" not in body

    def test_stats_include_monitor_when_pipeline_attached(
        self, service, start_gateway
    ):
        class StubPipeline:
            def stats(self):
                return MonitorStats(
                    blocks_scanned=7,
                    contracts_scanned=21,
                    alerts_emitted=3,
                    alert_rate=3 / 21,
                    windows=2,
                    next_block=8,
                    reorgs_detected=0,
                    block_latency_ms_p50=1.0,
                    block_latency_ms_p95=2.0,
                    block_latency_ms_p99=2.5,
                    drift_windows=1,
                    drifted=False,
                    service=service.stats(),
                )

        gateway = start_gateway(service, pipeline=StubPipeline())
        status, _, body = request(gateway.port, "GET", "/stats")
        assert status == 200
        assert body["monitor"]["blocks_scanned"] == 7
        assert body["monitor"]["service"]["requests"] == body["service"]["requests"]

    def test_stats_include_explain_when_configured(
        self, service, start_gateway, explainer
    ):
        gateway = start_gateway(service, explainer=explainer)
        status, _, body = request(gateway.port, "GET", "/stats")
        assert status == 200
        assert body["explain"]["explainers_built"] == 0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_deterministic_refill_under_injected_clock(self):
        now = [0.0]
        bucket = TokenBucket(2.0, 4, clock=lambda: now[0])
        for _ in range(4):
            assert bucket.try_acquire("c") == 0.0
        assert bucket.try_acquire("c") == pytest.approx(0.5)
        now[0] += 0.25  # half a token refilled — still 0.25s short
        assert bucket.try_acquire("c") == pytest.approx(0.25)
        now[0] += 0.25
        assert bucket.try_acquire("c") == 0.0

    def test_burst_caps_accumulation(self):
        now = [0.0]
        bucket = TokenBucket(1.0, 2, clock=lambda: now[0])
        now[0] += 100.0  # a long-idle client still only gets `burst` tokens
        assert bucket.try_acquire("c") == 0.0
        assert bucket.try_acquire("c") == 0.0
        assert bucket.try_acquire("c") == pytest.approx(1.0)

    def test_clients_are_isolated(self):
        bucket = TokenBucket(1.0, 1, clock=lambda: 0.0)
        assert bucket.try_acquire("a") == 0.0
        assert bucket.try_acquire("a") > 0.0
        assert bucket.try_acquire("b") == 0.0

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(0.0, 1, clock=lambda: 0.0)
        assert all(bucket.try_acquire("c") == 0.0 for _ in range(100))

    def test_request_larger_than_burst_quotes_full_bucket(self):
        bucket = TokenBucket(1.0, 2, clock=lambda: 0.0)
        bucket.try_acquire("c", 2)
        assert bucket.try_acquire("c", 5) == pytest.approx(2.0)

    @pytest.mark.parametrize(
        "kwargs",
        [{"rate_per_s": -1.0}, {"burst": 0}, {"max_clients": 0}],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        defaults = {"rate_per_s": 1.0, "burst": 1, "max_clients": 10}
        with pytest.raises(ValueError):
            TokenBucket(**{**defaults, **kwargs})


class TestAdmissionControl:
    def test_rate_limited_429_with_deterministic_retry_after(
        self, service, start_gateway
    ):
        now = [0.0]
        config = GatewayConfig(rate_limit_per_s=1.0, rate_burst=2)
        gateway = start_gateway(service, config=config, clock=lambda: now[0])
        payload = {"bytecodes": []}
        assert request(gateway.port, "POST", "/score/batch", body=payload)[0] == 200
        assert request(gateway.port, "POST", "/score/batch", body=payload)[0] == 200
        result = request(gateway.port, "POST", "/score/batch", body=payload)
        body = assert_error(result, 429, "rate_limited")
        assert result[1]["retry-after"] == "1"
        now[0] += 1.0  # deterministic refill: exactly one token back
        assert request(gateway.port, "POST", "/score/batch", body=payload)[0] == 200
        assert gateway.stats().rate_limited == 1

    def test_rate_limit_keys_on_client_id_header(self, service, start_gateway):
        config = GatewayConfig(rate_limit_per_s=0.001, rate_burst=1)
        gateway = start_gateway(service, config=config)
        payload = {"bytecodes": []}
        headers_a = {"X-Client-Id": "wallet-a"}
        assert (
            request(gateway.port, "POST", "/score/batch", body=payload, headers=headers_a)[0]
            == 200
        )
        result = request(
            gateway.port, "POST", "/score/batch", body=payload, headers=headers_a
        )
        assert_error(result, 429, "rate_limited")
        assert int(result[1]["retry-after"]) >= 1
        # A different client is not collateral damage of a's limit.
        assert (
            request(
                gateway.port,
                "POST",
                "/score/batch",
                body=payload,
                headers={"X-Client-Id": "wallet-b"},
            )[0]
            == 200
        )

    def test_overload_sheds_429_while_inflight_completes(
        self, fitted_detector, start_gateway, dataset
    ):
        slow = SlowDetector(fitted_detector, delay_s=0.5)
        config = ServingConfig(max_batch=4, max_wait_ms=1.0, verdict_cache_size=0)
        with ScoringService(slow, config=config) as service:
            gateway = start_gateway(
                service, config=GatewayConfig(max_inflight=1, request_timeout_s=10.0)
            )
            results = {}

            def first():
                results["first"] = request(
                    gateway.port,
                    "POST",
                    "/score/bytecode",
                    body={"bytecode": "0x" + dataset.bytecodes[0].hex()},
                )

            thread = threading.Thread(target=first)
            thread.start()
            time.sleep(0.15)  # the first request is now inside the model pass
            shed = request(
                gateway.port,
                "POST",
                "/score/bytecode",
                body={"bytecode": "0x" + dataset.bytecodes[1].hex()},
            )
            body = assert_error(shed, 429, "overloaded")
            assert shed[1]["retry-after"] == "1"
            thread.join(timeout=10)
            # Shedding protected the admitted request: it still completed.
            assert results["first"][0] == 200
            stats = gateway.stats()
            assert stats.shed == 1
            assert stats.peak_inflight == 1

    def test_timeout_returns_504(self, fitted_detector, start_gateway, dataset):
        slow = SlowDetector(fitted_detector, delay_s=0.6)
        config = ServingConfig(max_batch=4, max_wait_ms=1.0)
        with ScoringService(slow, config=config) as service:
            gateway = start_gateway(
                service, config=GatewayConfig(request_timeout_s=0.1)
            )
            started = time.perf_counter()
            result = request(
                gateway.port,
                "POST",
                "/score/bytecode",
                body={"bytecode": "0x" + dataset.bytecodes[0].hex()},
            )
            elapsed = time.perf_counter() - started
            assert_error(result, 504, "timeout")
            assert elapsed < 0.5  # answered at the budget, not after the model
            assert gateway.stats().timeouts == 1

    def test_timeout_does_not_poison_micro_batcher(
        self, fitted_detector, start_gateway, dataset
    ):
        slow = SlowDetector(fitted_detector, delay_s=0.4)
        config = ServingConfig(max_batch=4, max_wait_ms=1.0)
        with ScoringService(slow, config=config) as service:
            gateway = start_gateway(
                service, config=GatewayConfig(request_timeout_s=0.1)
            )
            payload = {"bytecode": "0x" + dataset.bytecodes[0].hex()}
            assert request(gateway.port, "POST", "/score/bytecode", body=payload)[0] == 504
            time.sleep(0.6)  # the abandoned flush finishes and fills the cache
            status, _, body = request(
                gateway.port, "POST", "/score/bytecode", body=payload
            )
            assert status == 200
            # The timed-out request's work was not wasted: its probability
            # landed in the verdict cache, so the retry is a pure hit.
            assert body["cached"] is True

    def test_graceful_drain_finishes_inflight_work(
        self, fitted_detector, start_gateway, event_loop_thread, dataset
    ):
        slow = SlowDetector(fitted_detector, delay_s=0.4)
        config = ServingConfig(max_batch=4, max_wait_ms=1.0, verdict_cache_size=0)
        with ScoringService(slow, config=config) as service:
            gateway = start_gateway(service)
            port = gateway.port
            results = {}

            def inflight():
                results["inflight"] = request(
                    port,
                    "POST",
                    "/score/bytecode",
                    body={"bytecode": "0x" + dataset.bytecodes[0].hex()},
                )

            thread = threading.Thread(target=inflight)
            thread.start()
            time.sleep(0.15)  # request admitted, model pass running
            event_loop_thread.run(gateway.stop())  # blocks until drained
            thread.join(timeout=10)
            assert results["inflight"][0] == 200  # queued work finished
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=2)

    def test_draining_healthz_503_on_kept_alive_connection(
        self, fitted_detector, start_gateway, event_loop_thread, dataset
    ):
        slow = SlowDetector(fitted_detector, delay_s=0.6)
        config = ServingConfig(max_batch=4, max_wait_ms=1.0, verdict_cache_size=0)
        with ScoringService(slow, config=config) as service:
            gateway = start_gateway(service)
            port = gateway.port
            keeper = socket.create_connection(("127.0.0.1", port), timeout=10)
            try:
                keeper.sendall(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                assert recv_response(keeper)[0] == 200

                def inflight():
                    request(
                        port,
                        "POST",
                        "/score/bytecode",
                        body={"bytecode": "0x" + dataset.bytecodes[0].hex()},
                    )

                scorer = threading.Thread(target=inflight)
                scorer.start()
                time.sleep(0.15)
                stopper = threading.Thread(
                    target=lambda: event_loop_thread.run(gateway.stop())
                )
                stopper.start()
                time.sleep(0.1)  # drain has begun, the slow request holds it open
                keeper.sendall(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                status, _, body = recv_response(keeper)
                assert status == 503
                assert body["status"] == "draining"
                scorer.join(timeout=10)
                stopper.join(timeout=10)
            finally:
                keeper.close()

    def test_connection_cap_503(self, service, start_gateway):
        gateway = start_gateway(service, config=GatewayConfig(max_connections=1))
        holder = socket.create_connection(("127.0.0.1", gateway.port), timeout=10)
        try:
            holder.sendall(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            assert recv_response(holder)[0] == 200  # slot held by keep-alive
            result = request(gateway.port, "GET", "/healthz")
            assert_error(result, 503, "busy")
            assert gateway.stats().rejected_connections == 1
        finally:
            holder.close()


# ---------------------------------------------------------------------------
# explanations
# ---------------------------------------------------------------------------


class TestExplain:
    def test_explained_verdict_has_reasons(
        self, service, start_gateway, explainer, fitted_detector, dataset
    ):
        gateway = start_gateway(service, explainer=explainer)
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": "0x" + dataset.bytecodes[0].hex(), "explain": True},
        )
        assert status == 200
        reasons = body["reasons"]
        assert len(reasons) == gateway.config.explain_top_k
        names = set(fitted_detector.feature_names())
        magnitudes = [abs(reason["shap"]) for reason in reasons]
        assert magnitudes == sorted(magnitudes, reverse=True)
        for reason in reasons:
            assert reason["opcode"] in names
            assert reason["direction"] in ("phishing", "benign")
            assert isinstance(reason["count"], int)

    def test_second_explained_request_builds_zero_explainers(
        self, service, start_gateway, explainer, dataset
    ):
        gateway = start_gateway(service, explainer=explainer)
        payload = {"bytecode": "0x" + dataset.bytecodes[0].hex(), "explain": True}
        first = request(gateway.port, "POST", "/score/bytecode", body=payload)[2]
        assert explainer.stats().explainers_built == 1
        second = request(gateway.port, "POST", "/score/bytecode", body=payload)[2]
        stats = explainer.stats()
        # Counter-pinned: the second request performed zero constructions
        # and served its SHAP row from the memo.
        assert stats.explainers_built == 1
        assert stats.explanations == 1
        assert stats.memo_hits == 1
        assert second["reasons"] == first["reasons"]

    def test_explanations_deterministic_under_fixed_seed(
        self, fitted_detector, dataset
    ):
        def fresh():
            return ExplanationService(
                fitted_detector,
                background=dataset.bytecodes[:12],
                top_k=4,
                n_permutations=2,
                max_background=4,
                seed=11,
            )

        code = dataset.bytecodes[3]
        assert fresh().explain(code) == fresh().explain(code)

    def test_threshold_flip_keeps_cached_shap(
        self, service, start_gateway, explainer, dataset
    ):
        gateway = start_gateway(service, explainer=explainer)
        payload = {"bytecode": "0x" + dataset.bytecodes[0].hex(), "explain": True}
        service.decision_threshold = 1.0
        strict = request(gateway.port, "POST", "/score/bytecode", body=payload)[2]
        service.decision_threshold = 0.0
        lax = request(gateway.port, "POST", "/score/bytecode", body=payload)[2]
        # The runtime re-threshold flipped the verdict...
        assert strict["verdict"] == "benign" or strict["probability"] >= 1.0
        assert lax["verdict"] == "phishing"
        assert lax["threshold"] == 0.0
        # ...without invalidating the cached SHAP values: one construction,
        # identical reasons, and the re-request was a memo hit.
        assert explainer.stats().explainers_built == 1
        assert lax["reasons"] == strict["reasons"]
        assert explainer.stats().memo_hits >= 1

    def test_explain_unavailable_400(self, gateway, dataset):
        result = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": "0x" + dataset.bytecodes[0].hex(), "explain": True},
        )
        assert_error(result, 400, "explain_unavailable")

    def test_explanation_service_rejects_featureless_detector(self, dataset):
        class Opaque:
            def predict_proba(self, bytecodes):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(TypeError, match="histogram"):
            ExplanationService(Opaque(), background=dataset.bytecodes[:4])

    def test_explanation_service_rejects_empty_background(self, fitted_detector):
        with pytest.raises(ValueError, match="background"):
            ExplanationService(fitted_detector, background=[])

    def test_explainer_cache_is_lru_with_build_counter(self):
        cache = ExplainerCache(capacity=1)
        assert cache.get("a", lambda: "explainer-a") == "explainer-a"
        assert cache.get("a", lambda: "rebuilt") == "explainer-a"
        assert cache.built == 1
        assert cache.get("b", lambda: "explainer-b") == "explainer-b"
        assert cache.built == 2
        assert len(cache) == 1  # "a" evicted
        assert cache.get("a", lambda: "explainer-a2") == "explainer-a2"
        assert cache.built == 3


# ---------------------------------------------------------------------------
# static analysis
# ---------------------------------------------------------------------------


def _backdoor_bytecode(seed=0):
    family = {f.name: f for f in templates.PHISHING_FAMILIES}["sweeper_backdoor"]
    return templates.build_family_bytecode(
        family, np.random.default_rng(seed), mix_bias={"selfdestruct": 50.0}
    )


class TestAnalyze:
    @pytest.fixture()
    def analyzer(self):
        return StaticAnalyzer(features=BatchFeatureService())

    def test_analyzed_verdict_carries_findings(
        self, service, start_gateway, analyzer
    ):
        gateway = start_gateway(service, analyzer=analyzer)
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": "0x" + _backdoor_bytecode().hex(), "analyze": True},
        )
        assert status == 200
        analysis = body["analysis"]
        assert analysis["max_severity"] == "high"
        rules = {finding["rule"] for finding in analysis["findings"]}
        assert "reachable-selfdestruct" in rules
        for finding in analysis["findings"]:
            assert set(finding) >= {"rule", "severity", "pc", "message"}
        assert analysis["metrics"]["unresolved_jumps"] == 0

    def test_unanalyzed_verdict_has_no_analysis_key(
        self, service, start_gateway, analyzer
    ):
        gateway = start_gateway(service, analyzer=analyzer)
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": "0x" + _backdoor_bytecode().hex()},
        )
        assert status == 200
        assert "analysis" not in body

    def test_analyze_address_resolves_chain_bytecode(
        self, service, start_gateway, analyzer, corpus
    ):
        gateway = start_gateway(service, analyzer=analyzer)
        record = corpus.records[0]
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/address",
            body={"address": record.address, "analyze": True},
        )
        assert status == 200
        assert body["analysis"]["metrics"]["code_bytes"] > 0

    def test_analysis_unavailable_400(self, gateway):
        result = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": "0x" + _backdoor_bytecode().hex(), "analyze": True},
        )
        assert_error(result, 400, "analysis_unavailable")

    def test_stats_include_analysis_section(self, service, start_gateway, analyzer):
        gateway = start_gateway(service, analyzer=analyzer)
        payload = {"bytecode": "0x" + _backdoor_bytecode().hex(), "analyze": True}
        request(gateway.port, "POST", "/score/bytecode", body=payload)
        request(gateway.port, "POST", "/score/bytecode", body=payload)
        status, _, body = request(gateway.port, "GET", "/stats")
        assert status == 200
        stats = body["analysis"]
        assert stats["analyses"] == 1
        assert stats["cache_hits"] == 1
        assert stats["high_severity"] >= 1

    def test_stats_without_analyzer_omit_section(self, gateway):
        status, _, body = request(gateway.port, "GET", "/stats")
        assert status == 200
        assert "analysis" not in body
