"""Cross-extractor equivalence harness: fast path vs. legacy per extractor.

Every feature view that consumes the disassembled opcode stream — tokenizer
(GPT-2/T5), hex n-grams (SCSGuard), frequency images (ViT+Freq) and opcode
histograms (HSC) — must be bit-identical between its vectorized
service-backed fast path and its legacy per-instruction path, on both the
session dataset and randomized adversarial bytecodes.  The harness also pins
the headline property of the shared multi-view service: running *all* views
over the same contracts disassembles each unique bytecode exactly once.
"""

import numpy as np
import pytest

from repro.evm.disassembler import normalize_bytecode
from repro.features.batch import BatchFeatureService, use_service
from repro.features.histogram import OpcodeHistogramExtractor
from repro.features.image import FrequencyImageEncoder
from repro.features.ngram import HexNgramEncoder
from repro.features.tokenizer import OpcodeTokenizer

from test_evm_sequence import random_bytecodes


@pytest.fixture()
def service():
    return BatchFeatureService()


@pytest.fixture()
def adversarial_codes():
    return random_bytecodes(100, seed=31, max_length=400) + [b""]


class TestTokenizerEquivalence:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"include_operands": False},
            {"add_cls": False},
            {"max_length": 17},
        ],
    )
    def test_fast_matches_legacy_on_adversarial_codes(
        self, service, adversarial_codes, kwargs
    ):
        fast = OpcodeTokenizer(service=service, **kwargs)
        legacy = OpcodeTokenizer(use_fast_path=False, **kwargs)
        for code in adversarial_codes:
            assert fast.tokenize(code) == legacy.tokenize(code), code.hex()
            assert np.array_equal(fast.encode_one(code), legacy.encode_one(code))
        assert np.array_equal(
            fast.transform(adversarial_codes), legacy.transform(adversarial_codes)
        )
        for fast_ids, legacy_ids in zip(
            fast.full_sequences(adversarial_codes),
            legacy.full_sequences(adversarial_codes),
        ):
            assert np.array_equal(fast_ids, legacy_ids)

    def test_fast_matches_legacy_on_dataset(self, service, bytecodes):
        sample = bytecodes[:25]
        fast = OpcodeTokenizer(max_length=64, service=service)
        legacy = OpcodeTokenizer(max_length=64, use_fast_path=False)
        assert np.array_equal(fast.transform(sample), legacy.transform(sample))

    @pytest.mark.slow
    def test_fast_matches_legacy_on_large_random_sweep(self, service):
        codes = random_bytecodes(300, seed=77, max_length=2048)
        fast = OpcodeTokenizer(max_length=512, service=service)
        legacy = OpcodeTokenizer(max_length=512, use_fast_path=False)
        assert np.array_equal(fast.transform(codes), legacy.transform(codes))


class TestNgramEquivalence:
    @pytest.mark.parametrize("chars_per_gram", [2, 6, 8])
    def test_fast_matches_legacy(self, service, adversarial_codes, chars_per_gram):
        fast = HexNgramEncoder(
            chars_per_gram=chars_per_gram, max_length=40, max_vocabulary=64,
            service=service,
        )
        legacy = HexNgramEncoder(
            chars_per_gram=chars_per_gram, max_length=40, max_vocabulary=64,
            use_fast_path=False,
        )
        fast.fit(adversarial_codes[:60])
        legacy.fit(adversarial_codes[:60])
        # Same grams, same ids, same frequency/lexicographic tie-break.
        assert fast.vocabulary_ == legacy.vocabulary_
        assert np.array_equal(
            fast.transform(adversarial_codes), legacy.transform(adversarial_codes)
        )

    def test_fast_matches_legacy_on_dataset(self, service, bytecodes):
        sample = bytecodes[:30]
        fast = HexNgramEncoder(max_length=48, service=service)
        legacy = HexNgramEncoder(max_length=48, use_fast_path=False)
        assert np.array_equal(
            fast.fit_transform(sample), legacy.fit_transform(sample)
        )
        assert fast.vocabulary_ == legacy.vocabulary_

    def test_oversized_grams_fall_back_to_string_path(self, service, adversarial_codes):
        # 10-byte grams overflow the int64 code space; the encoder must keep
        # producing legacy-identical output via the string path.
        fast = HexNgramEncoder(chars_per_gram=20, max_length=8, service=service)
        legacy = HexNgramEncoder(chars_per_gram=20, max_length=8, use_fast_path=False)
        fast.fit(adversarial_codes[:20])
        legacy.fit(adversarial_codes[:20])
        assert fast.vocabulary_ == legacy.vocabulary_
        assert np.array_equal(
            fast.transform(adversarial_codes[:30]), legacy.transform(adversarial_codes[:30])
        )


class TestFrequencyImageEquivalence:
    def test_fast_matches_legacy_on_adversarial_codes(self, service, adversarial_codes):
        fast = FrequencyImageEncoder(image_size=8, service=service)
        legacy = FrequencyImageEncoder(image_size=8, use_fast_path=False)
        fast.fit(adversarial_codes[:50])
        legacy.fit(adversarial_codes[:50])
        assert fast._mnemonic_encoder.table_ == legacy._mnemonic_encoder.table_
        assert fast._operand_encoder.table_ == legacy._operand_encoder.table_
        assert fast._gas_encoder.table_ == legacy._gas_encoder.table_
        assert fast._scale == legacy._scale
        assert np.array_equal(
            fast.transform(adversarial_codes), legacy.transform(adversarial_codes)
        )

    def test_fast_matches_legacy_on_dataset(self, service, bytecodes):
        sample = bytecodes[:20]
        fast = FrequencyImageEncoder(image_size=6, service=service)
        legacy = FrequencyImageEncoder(image_size=6, use_fast_path=False)
        assert np.array_equal(
            fast.fit_transform(sample), legacy.fit_transform(sample)
        )

    def test_mixed_paths_share_tables(self, service, bytecodes):
        # A legacy-fitted encoder flipped to the fast path mid-life must
        # encode identically: the LUTs are built from the fitted tables.
        sample = bytecodes[:15]
        encoder = FrequencyImageEncoder(image_size=6, service=service, use_fast_path=False)
        encoder.fit(sample)
        legacy_images = encoder.transform(sample)
        encoder.use_fast_path = True
        assert np.array_equal(encoder.transform(sample), legacy_images)


class TestSharedServiceSinglePass:
    def test_all_views_disassemble_each_unique_bytecode_once(self, bytecodes):
        sample = list(bytecodes[:40])
        sample += sample[:10]  # duplicates must not cost extra passes
        n_unique = len({normalize_bytecode(code) for code in sample})
        service = BatchFeatureService(cache_size=4 * len(sample))
        with use_service(service):
            tokenizer = OpcodeTokenizer(max_length=64)
            tokenizer.transform(sample)
            image = FrequencyImageEncoder(image_size=6)
            image.fit_transform(sample)
            histogram = OpcodeHistogramExtractor()
            histogram.fit_transform(sample)
            ngram = HexNgramEncoder(max_length=48)
            ngram.fit_transform(sample)
        # One bytes-level kernel pass per unique bytecode across all four
        # feature views: the tokenizer extracted the sequences, every other
        # view was served from the shared cache (histogram counts are binned
        # out of the cached sequences, n-grams never disassemble at all).
        assert service.kernel_passes == n_unique
        assert len(service) == n_unique
        # Misses are per-lookup (duplicates miss too on first sight), but the
        # deduplicated kernel only ever swept the unique codes.
        assert service.sequence_stats.misses == len(sample)
        assert service.stats.misses == 0  # every count lookup was a hit
        assert service.stats.hits > 0
        assert service.ngram_stats.lookups > 0

    def test_single_pass_holds_with_histogram_first(self, bytecodes):
        # The invariant must not depend on which view asks first: a cached
        # counts miss extracts the sequence and bins the counts out of it,
        # so the later sequence consumers are pure cache hits.
        sample = list(bytecodes[:30])
        n_unique = len({normalize_bytecode(code) for code in sample})
        service = BatchFeatureService()
        with use_service(service):
            OpcodeHistogramExtractor().fit_transform(sample)
            assert service.kernel_passes == n_unique
            OpcodeTokenizer(max_length=64).transform(sample)
            FrequencyImageEncoder(image_size=6).fit_transform(sample)
        assert service.kernel_passes == n_unique
        assert service.sequence_stats.misses == 0

    def test_histogram_fast_still_matches_legacy_under_shared_service(self, bytecodes):
        sample = bytecodes[:25]
        service = BatchFeatureService()
        service.sequences(sample)  # pre-warm sequences only
        fast = OpcodeHistogramExtractor(service=service)
        legacy = OpcodeHistogramExtractor(use_fast_path=False)
        assert np.array_equal(fast.fit_transform(sample), legacy.fit_transform(sample))
        assert fast.feature_names() == legacy.feature_names()
