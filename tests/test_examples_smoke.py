"""Tier-1 smoke test over every script in ``examples/``.

Each example is executed as a real subprocess (``python examples/<name>.py``)
so import errors, API drift, and broken output paths surface in CI instead
of rotting silently.  Examples all run at ``Scale.smoke()`` internally, so
the whole sweep stays within a few seconds per script.  The scripts are
discovered dynamically: adding an example automatically adds its smoke test.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_discovered():
    assert len(EXAMPLE_SCRIPTS) >= 5


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[path.stem for path in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Scripts that take an output directory (dataset_release) write into the
    # tmp dir; the others ignore the extra argument.  cwd is the tmp dir so
    # any default relative output paths land there too.
    result = subprocess.run(
        [sys.executable, str(script), str(tmp_path / "output")],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} exited with {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
