"""Tier-1 smoke test over every script in ``examples/``.

Each example is executed as a real subprocess (``python examples/<name>.py``)
so import errors, API drift, and broken output paths surface in CI instead
of rotting silently.  Examples all run at ``Scale.smoke()`` internally, so
the whole sweep stays within a few seconds per script.  The scripts are
discovered dynamically: adding an example automatically adds its smoke test.

Every example must also finish inside a hard wall-clock budget
(``EXAMPLE_BUDGET_S``): the subprocess is killed at the budget and its test
failed with a clear message, so a hang — the monitor examples in particular
must terminate cleanly under their ``max_blocks`` caps rather than poll
forever — fails fast instead of stalling the suite.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

#: Hard per-example wall-clock cap, in seconds.  Generous against CI noise
#: (examples finish in a few seconds each) but tight enough that a monitor
#: loop failing to terminate, or an example quietly outgrowing smoke scale,
#: fails the suite instead of stalling it.
EXAMPLE_BUDGET_S = 120


def test_examples_directory_discovered():
    assert len(EXAMPLE_SCRIPTS) >= 8


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[path.stem for path in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Scripts that take an output directory (dataset_release) write into the
    # tmp dir; the others ignore the extra argument.  cwd is the tmp dir so
    # any default relative output paths land there too.
    try:
        result = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "output")],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            timeout=EXAMPLE_BUDGET_S,
        )
    except subprocess.TimeoutExpired:
        pytest.fail(
            f"{script.name} exceeded the {EXAMPLE_BUDGET_S}s wall-clock budget "
            f"(hung or far beyond smoke scale) and was killed"
        )
    assert result.returncode == 0, (
        f"{script.name} exited with {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
