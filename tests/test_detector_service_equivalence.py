"""Cross-detector equivalence: shared injected service vs. legacy extraction.

The shared feature-resolution refactor must not move a single probability:
for every one of the 16 Table II detectors, fitting and scoring through an
explicitly injected :class:`~repro.features.batch.BatchFeatureService` has
to produce bit-identical ``predict_proba`` output to the same detector run
on its legacy internal extraction path (per-instruction disassembly, string
n-grams, per-contract byte loops).  Training is deterministic given the
seed, so any feature-level divergence would surface as a probability
mismatch here.
"""

import numpy as np
import pytest

from repro.features.batch import BatchFeatureService
from repro.models.base import PhishingDetector
from repro.models.registry import DeepModelScale, TABLE2_MODEL_NAMES, build_model


def force_legacy_path(detector: PhishingDetector) -> PhishingDetector:
    """Flip the detector and every extractor it owns onto the legacy path."""
    flipped = 0
    if hasattr(detector, "use_fast_path"):
        detector.use_fast_path = False
        flipped += 1
    for attribute in ("extractor", "tokenizer", "encoder"):
        extractor = getattr(detector, attribute, None)
        if extractor is not None and hasattr(extractor, "use_fast_path"):
            extractor.use_fast_path = False
            flipped += 1
    assert flipped > 0, f"{detector.name} exposes no legacy path to compare against"
    return detector


@pytest.fixture(scope="module")
def split(dataset):
    codes = dataset.bytecodes[:22]
    labels = dataset.labels[:22]
    return codes[:14], labels[:14], codes[14:]


@pytest.mark.parametrize("name", TABLE2_MODEL_NAMES)
def test_detector_bit_identical_with_shared_service(name, split):
    train_codes, train_labels, test_codes = split
    scale = DeepModelScale.smoke()

    service = BatchFeatureService()
    shared = build_model(name, scale=scale, seed=0, service=service)
    shared.fit(train_codes, train_labels)
    shared_probabilities = shared.predict_proba(test_codes)

    legacy = force_legacy_path(build_model(name, scale=scale, seed=0))
    legacy.fit(train_codes, train_labels)
    legacy_probabilities = legacy.predict_proba(test_codes)

    assert np.array_equal(shared_probabilities, legacy_probabilities), name
    # The shared detector really resolved its features through the injected
    # service (not some private extractor or the process-wide default).
    assert service.aggregate_stats().lookups > 0, name


def test_all_16_detectors_share_one_service(split):
    """One injected service serves every detector; dedup works across them."""
    train_codes, train_labels, test_codes = split
    scale = DeepModelScale.smoke()
    service = BatchFeatureService()
    for name in TABLE2_MODEL_NAMES:
        detector = build_model(name, scale=scale, seed=0, service=service)
        assert detector.feature_service is service, name
        detector.fit(train_codes, train_labels)
        detector.predict_proba(test_codes)
    # Every disassembly-consuming view was served out of at most one kernel
    # pass per unique bytecode, across all 16 detectors.
    unique = len({bytes(code) for code in train_codes + test_codes})
    assert service.kernel_passes <= unique
    assert service.aggregate_stats().hit_rate > 0.5
