"""Tests for splitters and cross-validation."""

import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    cross_validate,
    train_test_split,
)


class TestKFold:
    def test_covers_all_indices_exactly_once(self):
        splitter = KFold(n_splits=5, seed=1)
        seen = []
        for train, test in splitter.split(53):
            seen.extend(test.tolist())
            assert set(train) & set(test) == set()
        assert sorted(seen) == list(range(53))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_deterministic_given_seed(self):
        a = [test.tolist() for _, test in KFold(n_splits=4, seed=7).split(20)]
        b = [test.tolist() for _, test in KFold(n_splits=4, seed=7).split(20)]
        assert a == b


class TestStratifiedKFold:
    def test_class_balance_preserved(self):
        y = np.array([0] * 40 + [1] * 20)
        for train, test in StratifiedKFold(n_splits=4, seed=0).split(y):
            test_ratio = y[test].mean()
            assert 0.15 < test_ratio < 0.5

    def test_covers_all_indices(self):
        y = np.array([0, 1] * 15)
        seen = []
        for _, test in StratifiedKFold(n_splits=3, seed=0).split(y):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(30))

    def test_train_and_test_disjoint(self):
        y = np.array([0, 1] * 20)
        for train, test in StratifiedKFold(n_splits=5, seed=0).split(y):
            assert set(train).isdisjoint(test)


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.array([0, 1] * 50)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, seed=0)
        assert len(X_test) == 20
        assert len(X_train) == 80
        assert len(y_train) == 80

    def test_stratified_keeps_both_classes(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.array([0] * 36 + [1] * 4)
        _, _, _, y_test = train_test_split(X, y, test_size=0.25, stratify=True, seed=0)
        assert set(np.unique(y_test)) == {0, 1}

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.array([0, 1, 0, 1]), test_size=1.5)

    def test_unstratified_split(self):
        X = np.arange(30).reshape(-1, 1)
        y = np.array([0, 1] * 15)
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.3, stratify=False, seed=1)
        assert len(X_test) == 9


class TestCrossValidate:
    def test_number_of_folds_and_runs(self, toy_classification):
        X, y = toy_classification
        result = cross_validate(
            lambda: LogisticRegression(n_iterations=100), X, y, n_splits=4, n_runs=2, seed=0
        )
        assert len(result.folds) == 8
        assert {fold.run for fold in result.folds} == {0, 1}

    def test_summary_contains_all_metrics(self, toy_classification):
        X, y = toy_classification
        result = cross_validate(lambda: KNeighborsClassifier(5), X, y, n_splits=3)
        summary = result.summary()
        for key in ("accuracy", "f1", "precision", "recall", "train_time", "inference_time"):
            assert key in summary

    def test_reasonable_accuracy_on_separable_data(self, toy_classification):
        X, y = toy_classification
        result = cross_validate(lambda: LogisticRegression(), X, y, n_splits=4)
        assert result.mean_metric("accuracy") > 0.8

    def test_metric_values_shape(self, toy_classification):
        X, y = toy_classification
        result = cross_validate(lambda: KNeighborsClassifier(3), X, y, n_splits=5)
        assert len(result.metric_values("f1")) == 5

    def test_unknown_metric_rejected(self, toy_classification):
        X, y = toy_classification
        result = cross_validate(lambda: KNeighborsClassifier(3), X, y, n_splits=3)
        with pytest.raises(ValueError):
            result.metric_values("auc")

    def test_cross_val_score_shape(self, toy_classification):
        X, y = toy_classification
        scores = cross_val_score(KNeighborsClassifier(3), X, y, n_splits=4)
        assert scores.shape == (4,)
        assert np.all((scores >= 0) & (scores <= 1))
