"""Tests for scalers and encoders."""

import numpy as np
import pytest

from repro.ml.preprocessing import FrequencyEncoder, LabelEncoder, MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10)])
        scaled = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.0)


class TestMinMaxScaler:
    def test_range_01(self):
        X = np.array([[1.0, -5.0], [3.0, 5.0], [2.0, 0.0]])
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_constant_column_not_nan(self):
        scaled = MinMaxScaler().fit_transform(np.ones((5, 2)))
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestLabelEncoder:
    def test_roundtrip(self):
        encoder = LabelEncoder()
        codes = encoder.fit_transform(["b", "a", "b", "c"])
        assert list(encoder.inverse_transform(codes)) == ["b", "a", "b", "c"]

    def test_codes_are_contiguous(self):
        encoder = LabelEncoder().fit(["x", "y", "z"])
        assert sorted(encoder.transform(["x", "y", "z"])) == [0, 1, 2]

    def test_unknown_label_raises(self):
        encoder = LabelEncoder().fit(["a"])
        with pytest.raises(KeyError):
            encoder.transform(["b"])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])


class TestFrequencyEncoder:
    def test_relative_frequencies(self):
        encoder = FrequencyEncoder(normalize=True)
        encoder.fit(["PUSH1", "PUSH1", "MSTORE", "PUSH1"])
        values = encoder.transform(["PUSH1", "MSTORE"])
        assert values[0] == pytest.approx(0.75)
        assert values[1] == pytest.approx(0.25)

    def test_absolute_counts(self):
        encoder = FrequencyEncoder(normalize=False)
        encoder.fit(["a", "a", "b"])
        assert list(encoder.transform(["a", "b"])) == [2.0, 1.0]

    def test_unknown_token_default(self):
        encoder = FrequencyEncoder(unknown_value=-1.0)
        encoder.fit(["a"])
        assert encoder.transform(["zzz"])[0] == -1.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FrequencyEncoder().transform(["a"])

    def test_higher_frequency_maps_to_higher_value(self):
        encoder = FrequencyEncoder().fit(["x"] * 9 + ["y"])
        x_value, y_value = encoder.transform(["x", "y"])
        assert x_value > y_value
