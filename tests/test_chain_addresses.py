"""Tests for address and hash utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.addresses import bytecode_hash, derive_address, is_valid_address, normalize_address


class TestAddressValidation:
    def test_valid_address(self):
        assert is_valid_address("0x" + "ab" * 20)

    def test_rejects_short_address(self):
        assert not is_valid_address("0x1234")

    def test_rejects_missing_prefix(self):
        assert not is_valid_address("ab" * 20)

    def test_rejects_non_hex(self):
        assert not is_valid_address("0x" + "zz" * 20)

    def test_rejects_non_string(self):
        assert not is_valid_address(1234)

    def test_normalize_lowercases(self):
        mixed = "0x" + "AB" * 20
        assert normalize_address(mixed) == "0x" + "ab" * 20

    def test_normalize_rejects_invalid(self):
        with pytest.raises(ValueError):
            normalize_address("0x123")


class TestDeriveAddress:
    def test_deterministic(self):
        assert derive_address(42) == derive_address(42)

    def test_different_seeds_differ(self):
        assert derive_address(1) != derive_address(2)

    def test_accepts_string_and_bytes(self):
        assert is_valid_address(derive_address("seed"))
        assert is_valid_address(derive_address(b"seed"))

    @given(st.integers(min_value=0, max_value=2**64))
    @settings(max_examples=30, deadline=None)
    def test_always_valid(self, seed):
        assert is_valid_address(derive_address(seed))


class TestBytecodeHash:
    def test_deterministic(self):
        assert bytecode_hash(b"\x60\x80") == bytecode_hash(b"\x60\x80")

    def test_hex_and_bytes_agree(self):
        assert bytecode_hash("0x6080") == bytecode_hash(b"\x60\x80")

    def test_distinct_bytecodes_differ(self):
        assert bytecode_hash(b"\x60\x80") != bytecode_hash(b"\x60\x81")

    def test_hash_length(self):
        assert len(bytecode_hash(b"")) == 64
