"""Crash/resume property of the monitor: no duplicate alerts, no gaps.

The acceptance criterion of the monitoring subsystem: killing the monitor
at *any* block and restarting it from the checkpoint yields the exact alert
sequence of an uninterrupted run — bit-for-bit, in order, with no block
rescored and none skipped.  The tests below simulate the kill by capping a
first run at ``max_blocks=k`` (the pipeline checkpoints after every window,
and windows clamp to the cap, so the cursor lands exactly on ``k``), then
start a *fresh* pipeline over the same checkpoint file and let it drain the
chain.  A deterministic seeded chain plus a deterministic detector make the
comparison exact.

A fixed set of kill points (including the degenerate edges) runs in tier 1;
the exhaustive sweep over every possible kill point carries the ``slow``
marker.
"""

import pytest

from repro.chain.blocks import BlockStream, BlockStreamConfig
from repro.chain.rpc import SimulatedEthereumNode
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor import Checkpoint, MonitorConfig, MonitorPipeline
from repro.serving import ScoringService

N_BLOCKS = 26
CONFIRMATIONS = 2
#: Blocks the monitor can actually process (head minus the confirmation depth).
N_CONFIRMED = N_BLOCKS - CONFIRMATIONS


@pytest.fixture(scope="module")
def node():
    node = SimulatedEthereumNode()
    node.mine(
        BlockStream(BlockStreamConfig(seed=41, deploys_per_block=2.0, phishing_share=0.4)),
        N_BLOCKS,
    )
    return node


@pytest.fixture(scope="module")
def detector(dataset):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = BatchFeatureService()
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


def _monitor_config():
    # A poll window that does not divide the chain length, so kill points
    # land mid-window as often as on window boundaries.
    return MonitorConfig(confirmations=CONFIRMATIONS, poll_blocks=5, drift_window=8)


def _run(detector, node, checkpoint, max_blocks=None):
    """One monitor process lifetime; returns its emitted alert sequence."""
    with ScoringService(detector, node=node) as service:
        pipeline = MonitorPipeline(
            service, node, config=_monitor_config(), checkpoint=checkpoint
        )
        pipeline.run(max_blocks=max_blocks)
        return list(pipeline.sink.alerts)


@pytest.fixture(scope="module")
def uninterrupted(detector, node, tmp_path_factory):
    checkpoint = Checkpoint(tmp_path_factory.mktemp("baseline") / "cursor.json")
    alerts = _run(detector, node, checkpoint)
    assert alerts, "the baseline run must emit alerts for the property to bite"
    return alerts


def _assert_resume_exact(detector, node, tmp_path, uninterrupted, kill_block):
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    before = _run(detector, node, checkpoint, max_blocks=kill_block)
    after = _run(detector, node, checkpoint)  # fresh pipeline, same checkpoint
    combined = before + after
    assert combined == uninterrupted
    # No duplicates, no gaps — stated directly, not only via sequence equality.
    seen = [(alert.block_number, alert.tx_hash) for alert in combined]
    assert len(seen) == len(set(seen))
    assert Checkpoint(tmp_path / "cursor.json").load().next_block == N_CONFIRMED


@pytest.mark.parametrize("kill_block", [0, 1, 4, 5, 11, 17, N_CONFIRMED - 1, N_CONFIRMED])
def test_kill_and_resume_reproduces_alert_sequence(
    detector, node, tmp_path, uninterrupted, kill_block
):
    _assert_resume_exact(detector, node, tmp_path, uninterrupted, kill_block)


@pytest.mark.slow
@pytest.mark.parametrize("kill_block", range(N_CONFIRMED + 1))
def test_every_kill_point_resumes_exactly(
    detector, node, tmp_path, uninterrupted, kill_block
):
    _assert_resume_exact(detector, node, tmp_path, uninterrupted, kill_block)


def test_double_interruption_still_exact(detector, node, tmp_path, uninterrupted):
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    first = _run(detector, node, checkpoint, max_blocks=6)
    second = _run(detector, node, checkpoint, max_blocks=9)
    third = _run(detector, node, checkpoint)
    assert first + second + third == uninterrupted


def test_resume_does_not_rescore_checkpointed_blocks(detector, node, tmp_path):
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    _run(detector, node, checkpoint, max_blocks=10)
    with ScoringService(detector, node=node) as service:
        pipeline = MonitorPipeline(
            service, node, config=_monitor_config(), checkpoint=checkpoint
        )
        assert pipeline.resumed
        stats = pipeline.run()
    # The resumed process scanned only the remaining blocks itself, while
    # the checkpointed counters report the whole history.
    assert stats.blocks_scanned == N_CONFIRMED
    assert stats.service.requests == sum(
        len(node.get_block(number).transactions) for number in range(10, N_CONFIRMED)
    )
