"""Crash/resume property of the monitor: no duplicate alerts, no gaps.

The acceptance criterion of the monitoring subsystem: killing the monitor
at *any* block and restarting it from the checkpoint yields the exact alert
sequence of an uninterrupted run — bit-for-bit, in order, with no block
rescored and none skipped.  The tests below simulate the kill by capping a
first run at ``max_blocks=k`` (the pipeline checkpoints after every window,
and windows clamp to the cap, so the cursor lands exactly on ``k``), then
start a *fresh* pipeline over the same checkpoint file and let it drain the
chain.  A deterministic seeded chain plus a deterministic detector make the
comparison exact.

The same property extends to the drift telemetry: the checkpoint embeds the
tracker's reference window, partial score buffer and completed-window
count, so the resumed run's :class:`~repro.monitor.drift.DriftWindow`
sequence — indexes, block spans, statistics, the reference itself — equals
the uninterrupted run's bit-for-bit (the historical failure mode was a
restart silently re-baselining the reference from post-restart scores).

A fixed set of kill points (including the degenerate edges) runs in tier 1;
the exhaustive sweep over every possible kill point carries the ``slow``
marker.
"""

import numpy as np
import pytest

from repro.chain.blocks import BlockStream, BlockStreamConfig
from repro.chain.rpc import SimulatedEthereumNode
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor import (
    Checkpoint,
    MonitorConfig,
    MonitorPipeline,
    MultiChainConfig,
    MultiChainMonitor,
    chain_stream_configs,
)
from repro.serving import ScoringService

N_BLOCKS = 26
CONFIRMATIONS = 2
#: Blocks the monitor can actually process (head minus the confirmation depth).
N_CONFIRMED = N_BLOCKS - CONFIRMATIONS


@pytest.fixture(scope="module")
def node():
    node = SimulatedEthereumNode()
    node.mine(
        BlockStream(BlockStreamConfig(seed=41, deploys_per_block=2.0, phishing_share=0.4)),
        N_BLOCKS,
    )
    return node


@pytest.fixture(scope="module")
def detector(dataset):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = BatchFeatureService()
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


def _monitor_config():
    # A poll window that does not divide the chain length, so kill points
    # land mid-window as often as on window boundaries.
    return MonitorConfig(confirmations=CONFIRMATIONS, poll_blocks=5, drift_window=8)


def _run(detector, node, checkpoint, max_blocks=None):
    """One monitor process lifetime; returns its emitted alert sequence."""
    alerts, _, _ = _run_with_drift(detector, node, checkpoint, max_blocks)
    return alerts


def _run_with_drift(detector, node, checkpoint, max_blocks=None):
    """One process lifetime; returns (alerts, drift windows, reference)."""
    with ScoringService(detector, node=node) as service:
        pipeline = MonitorPipeline(
            service, node, config=_monitor_config(), checkpoint=checkpoint
        )
        pipeline.run(max_blocks=max_blocks)
        return (
            list(pipeline.sink.alerts),
            list(pipeline.drift.windows),
            pipeline.drift.reference,
        )


@pytest.fixture(scope="module")
def uninterrupted(detector, node, tmp_path_factory):
    checkpoint = Checkpoint(tmp_path_factory.mktemp("baseline") / "cursor.json")
    alerts = _run(detector, node, checkpoint)
    assert alerts, "the baseline run must emit alerts for the property to bite"
    return alerts


def _assert_resume_exact(detector, node, tmp_path, uninterrupted, kill_block):
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    before = _run(detector, node, checkpoint, max_blocks=kill_block)
    after = _run(detector, node, checkpoint)  # fresh pipeline, same checkpoint
    combined = before + after
    assert combined == uninterrupted
    # No duplicates, no gaps — stated directly, not only via sequence equality.
    seen = [(alert.block_number, alert.tx_hash) for alert in combined]
    assert len(seen) == len(set(seen))
    assert Checkpoint(tmp_path / "cursor.json").load().cursor.next_block == N_CONFIRMED


@pytest.mark.parametrize("kill_block", [0, 1, 4, 5, 11, 17, N_CONFIRMED - 1, N_CONFIRMED])
def test_kill_and_resume_reproduces_alert_sequence(
    detector, node, tmp_path, uninterrupted, kill_block
):
    _assert_resume_exact(detector, node, tmp_path, uninterrupted, kill_block)


@pytest.mark.slow
@pytest.mark.parametrize("kill_block", range(N_CONFIRMED + 1))
def test_every_kill_point_resumes_exactly(
    detector, node, tmp_path, uninterrupted, kill_block
):
    _assert_resume_exact(detector, node, tmp_path, uninterrupted, kill_block)


def test_double_interruption_still_exact(detector, node, tmp_path, uninterrupted):
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    first = _run(detector, node, checkpoint, max_blocks=6)
    second = _run(detector, node, checkpoint, max_blocks=9)
    third = _run(detector, node, checkpoint)
    assert first + second + third == uninterrupted


def test_resume_does_not_rescore_checkpointed_blocks(detector, node, tmp_path):
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    _run(detector, node, checkpoint, max_blocks=10)
    with ScoringService(detector, node=node) as service:
        pipeline = MonitorPipeline(
            service, node, config=_monitor_config(), checkpoint=checkpoint
        )
        assert pipeline.resumed
        stats = pipeline.run()
    # The resumed process scanned only the remaining blocks itself, while
    # the checkpointed counters report the whole history.
    assert stats.blocks_scanned == N_CONFIRMED
    assert stats.service.requests == sum(
        len(node.get_block(number).transactions) for number in range(10, N_CONFIRMED)
    )


# ----------------------------------------------------------------------
# drift telemetry across restarts
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def uninterrupted_drift(detector, node, tmp_path_factory):
    checkpoint = Checkpoint(tmp_path_factory.mktemp("drift-baseline") / "cursor.json")
    _, windows, reference = _run_with_drift(detector, node, checkpoint)
    assert len(windows) >= 3, "the chain must complete several drift windows"
    return windows, reference


@pytest.mark.parametrize("kill_block", [1, 3, 4, 5, 9, 13, 20, N_CONFIRMED - 1])
def test_kill_and_resume_reproduces_drift_sequence(
    detector, node, tmp_path, uninterrupted_drift, kill_block
):
    """The resumed DriftWindow sequence is bit-identical, reference included.

    Kill points deliberately include mid-drift-window positions (the drift
    window of 8 scores spans ~4 blocks at 2 deploys/block, offset from the
    5-block poll window), so the checkpoint's partial score buffer — not
    just the completed windows — carries the equality.
    """
    baseline_windows, baseline_reference = uninterrupted_drift
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    _, before, _ = _run_with_drift(detector, node, checkpoint, max_blocks=kill_block)
    _, after, resumed_reference = _run_with_drift(detector, node, checkpoint)
    combined = before + after
    # Dataclass equality covers index, block span, statistic, p-value and
    # the drifted decision — floats round-trip JSON via repr, so the
    # comparison is exact, not approximate.
    assert combined == baseline_windows
    assert np.array_equal(resumed_reference, baseline_reference)
    # Indexes continue across the restart instead of restarting at 0.
    assert [window.index for window in combined] == list(range(len(combined)))


def test_resumed_tracker_does_not_rebaseline_reference(detector, node, tmp_path):
    """The pre-kill reference survives: the resumed run must not adopt a new
    reference window from post-restart scores (the v1-checkpoint bug)."""
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    # 9 blocks ≳ one full drift window of 8 scores: the reference exists.
    _, before, reference_before = _run_with_drift(detector, node, checkpoint, max_blocks=9)
    assert reference_before is not None
    _, _, reference_after = _run_with_drift(detector, node, checkpoint)
    assert np.array_equal(reference_after, reference_before)


def test_drift_window_count_cumulative_across_restarts(detector, node, tmp_path):
    checkpoint = Checkpoint(tmp_path / "cursor.json")
    _run_with_drift(detector, node, checkpoint, max_blocks=12)
    with ScoringService(detector, node=node) as service:
        pipeline = MonitorPipeline(
            service, node, config=_monitor_config(), checkpoint=checkpoint
        )
        stats = pipeline.run()
    baseline = Checkpoint(tmp_path / "cursor.json").load()
    assert stats.drift_windows == baseline.drift["completed_windows"]
    assert stats.drift_windows > len(pipeline.drift.windows)  # some pre-kill


# ----------------------------------------------------------------------
# per-chain checkpoint isolation under the supervisor
# ----------------------------------------------------------------------


def _three_chain_nodes():
    nodes = []
    for config in chain_stream_configs(3, BlockStreamConfig(seed=41, deploys_per_block=2.0)):
        node = SimulatedEthereumNode(chain_id=config.chain_id)
        node.mine(BlockStream(config), N_BLOCKS)
        nodes.append(node)
    return nodes


def test_multichain_checkpoints_are_per_chain_files(detector, tmp_path):
    nodes = _three_chain_nodes()
    with ScoringService(detector, node=nodes[0]) as service:
        monitor = MultiChainMonitor(
            service,
            nodes,
            config=MultiChainConfig(monitor=_monitor_config()),
            checkpoint_dir=tmp_path,
        )
        monitor.run()
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == ["chain-1.json", "chain-2.json", "chain-3.json"]
    for chain_id in (1, 2, 3):
        state = Checkpoint(tmp_path / f"chain-{chain_id}.json").load()
        assert state.cursor.next_block == N_CONFIRMED
        assert state.drift is not None


def test_multichain_kill_resumes_only_killed_progress(detector, tmp_path):
    """Chains resume independently: each picks up from its own cursor."""
    nodes = _three_chain_nodes()
    with ScoringService(detector, node=nodes[0]) as service:
        MultiChainMonitor(
            service,
            nodes,
            config=MultiChainConfig(monitor=_monitor_config()),
            checkpoint_dir=tmp_path,
        ).run(max_blocks=17)
    cursors = {
        chain_id: Checkpoint(tmp_path / f"chain-{chain_id}.json").load().cursor.next_block
        for chain_id in (1, 2, 3)
    }
    # The budget stops the supervisor at the first window boundary past it
    # (windows are never truncated), so 17 rounds up to a whole window.
    assert 17 <= sum(cursors.values()) < 17 + 5
    assert all(cursor % 5 == 0 or cursor == N_CONFIRMED for cursor in cursors.values())
    with ScoringService(detector, node=nodes[0]) as service:
        monitor = MultiChainMonitor(
            service,
            nodes,
            config=MultiChainConfig(monitor=_monitor_config()),
            checkpoint_dir=tmp_path,
        )
        assert monitor.resumed
        stats = monitor.run()
    assert stats.blocks_scanned == 3 * N_CONFIRMED
    for chain_stats in stats.chains:
        assert chain_stats.next_block == N_CONFIRMED
