"""Tests for the classical classifiers (tree, forest, boosting, kNN, linear)."""

import numpy as np
import pytest

from repro.ml.base import clone
from repro.ml.boosting import CatBoostClassifier, LightGBMClassifier, XGBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LinearSVMClassifier, LogisticRegression
from repro.ml.tree import DecisionTreeClassifier, RegressionTreeBuilder

ALL_CLASSIFIERS = [
    DecisionTreeClassifier(max_depth=6),
    RandomForestClassifier(n_estimators=15, max_depth=8, seed=0),
    XGBoostClassifier(n_estimators=25, max_depth=3),
    LightGBMClassifier(n_estimators=25, max_leaves=15),
    CatBoostClassifier(n_estimators=10, max_depth=3),
    KNeighborsClassifier(5),
    LinearSVMClassifier(n_epochs=20),
    LogisticRegression(n_iterations=200),
]


@pytest.mark.parametrize("classifier", ALL_CLASSIFIERS, ids=lambda c: type(c).__name__)
class TestCommonBehaviour:
    def test_fit_predict_accuracy(self, classifier, toy_classification):
        X, y = toy_classification
        model = clone(classifier)
        model.fit(X[:180], y[:180])
        accuracy = model.score(X[180:], y[180:])
        assert accuracy > 0.6

    def test_predict_proba_shape_and_sum(self, classifier, toy_classification):
        X, y = toy_classification
        model = clone(classifier).fit(X[:150], y[:150])
        probabilities = model.predict_proba(X[150:170])
        assert probabilities.shape == (20, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(probabilities >= -1e-9)

    def test_predictions_are_known_classes(self, classifier, toy_classification):
        X, y = toy_classification
        model = clone(classifier).fit(X[:150], y[:150])
        assert set(np.unique(model.predict(X[150:]))) <= {0, 1}

    def test_unfitted_predict_raises(self, classifier, toy_classification):
        X, _ = toy_classification
        with pytest.raises(RuntimeError):
            clone(classifier).predict_proba(X[:3])

    def test_clone_preserves_params(self, classifier, toy_classification):
        fresh = clone(classifier)
        assert fresh.get_params() == classifier.get_params()


class TestDecisionTree:
    def test_pure_leaf_on_trivial_data(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0
        assert tree.n_leaves >= 2

    def test_max_depth_limits_leaves(self, toy_classification):
        X, y = toy_classification
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert shallow.n_leaves <= 2
        assert deep.n_leaves >= shallow.n_leaves

    def test_min_samples_leaf_respected(self, toy_classification):
        X, y = toy_classification
        tree = DecisionTreeClassifier(min_samples_leaf=40).fit(X, y)
        for node in tree.nodes_:
            if node.is_leaf:
                assert node.n_samples >= 40 or node.n_samples == len(y)

    def test_constant_features_yield_single_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves == 1

    def test_input_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.ones((3, 2, 1)), np.array([0, 1, 0]))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.ones((3, 2)), np.array([0, 1]))


class TestRandomForest:
    def test_more_trees_not_worse_than_one(self, toy_classification):
        X, y = toy_classification
        single = RandomForestClassifier(n_estimators=1, max_depth=4, seed=0).fit(X[:180], y[:180])
        many = RandomForestClassifier(n_estimators=30, max_depth=4, seed=0).fit(X[:180], y[:180])
        assert many.score(X[180:], y[180:]) >= single.score(X[180:], y[180:]) - 0.05

    def test_feature_importances_sum_to_one(self, toy_classification):
        X, y = toy_classification
        forest = RandomForestClassifier(n_estimators=10, max_depth=5, seed=1).fit(X, y)
        importances = forest.feature_importances()
        assert importances.shape == (X.shape[1],)
        assert importances.sum() == pytest.approx(1.0)

    def test_deterministic_given_seed(self, toy_classification):
        X, y = toy_classification
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X[:20])
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X[:20])
        assert np.array_equal(a, b)


class TestBoosting:
    def test_training_improves_over_base_rate(self, toy_classification):
        X, y = toy_classification
        model = XGBoostClassifier(n_estimators=40, max_depth=3).fit(X[:180], y[:180])
        assert model.score(X[180:], y[180:]) > max(y.mean(), 1 - y.mean())

    def test_decision_function_monotonic_with_probability(self, toy_classification):
        X, y = toy_classification
        model = LightGBMClassifier(n_estimators=20).fit(X, y)
        scores = model.decision_function(X[:30])
        probabilities = model.predict_proba(X[:30])[:, 1]
        assert np.all(np.argsort(scores) == np.argsort(probabilities))

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.array([0, 1, 2] * 10)
        with pytest.raises(ValueError):
            XGBoostClassifier(n_estimators=2).fit(X, y)

    def test_feature_importances_normalised(self, toy_classification):
        X, y = toy_classification
        model = CatBoostClassifier(n_estimators=5, max_depth=2).fit(X, y)
        importances = model.feature_importances()
        assert importances.sum() == pytest.approx(1.0, abs=1e-6)

    def test_regression_tree_growth_policies(self, toy_classification):
        X, y = toy_classification
        gradients = (y - 0.5).astype(float)
        hessians = np.full(len(y), 0.25)
        for growth in ("level", "leaf", "symmetric"):
            builder = RegressionTreeBuilder(max_depth=3, max_leaves=7, growth=growth)
            tree = builder.build(X, gradients, hessians)
            predictions = tree.predict(X)
            assert predictions.shape == (len(y),)
            assert np.all(np.isfinite(predictions))

    def test_unknown_growth_rejected(self):
        with pytest.raises(ValueError):
            RegressionTreeBuilder(growth="bogus")


class TestKNN:
    def test_k_larger_than_dataset_is_clamped(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        model = KNeighborsClassifier(n_neighbors=10).fit(X, y)
        assert model.predict(np.array([[1.5]]))[0] in (0, 1)

    def test_distance_weighting_prefers_nearest(self):
        X = np.array([[0.0], [0.1], [10.0]])
        y = np.array([1, 1, 0])
        model = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(X, y)
        assert model.predict(np.array([[0.05]]))[0] == 1

    def test_manhattan_metric(self, toy_classification):
        X, y = toy_classification
        model = KNeighborsClassifier(n_neighbors=5, metric="manhattan").fit(X[:150], y[:150])
        assert model.score(X[150:], y[150:]) > 0.55

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(metric="cosine")

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0).fit(np.ones((3, 1)), np.array([0, 1, 0]))


class TestLinearModels:
    def test_logreg_learns_linear_boundary(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_svm_learns_linear_boundary(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 2))
        y = (2 * X[:, 0] - X[:, 1] > 0).astype(int)
        model = LinearSVMClassifier(n_epochs=50, seed=0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.array([0, 1, 2] * 10)
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, y)
        with pytest.raises(ValueError):
            LinearSVMClassifier().fit(X, y)

    def test_decision_function_sign_matches_prediction(self, toy_classification):
        X, y = toy_classification
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X[:20])
        predictions = model.predict(X[:20])
        assert np.array_equal(predictions, (scores > 0).astype(int))
