"""Tests for spill-on-evict caching: eviction stops meaning recompute.

The pins the ISSUE asks for: evicting a cold entry writes its persistable
views to a content-addressed spill file, a follow-up get is a ``spill_hit``
serving a bit-identical array with **zero** new kernel passes — including
across a service ``close()``/reopen (a second service pointed at the same
spill directory), since spill files are keyed by content hash, not by
service identity.
"""

import numpy as np
import pytest

from repro.evm.cfg import cfg_metrics_vector
from repro.evm.fastcount import count_opcodes, sequence_batch
from repro.features.batch import (
    BatchFeatureService,
    SPILL_FILE_MAGIC,
    content_key,
)


def make_codes(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=int(rng.integers(1, 200)), dtype=np.uint8).tobytes()
        for _ in range(n)
    ]


def spill_files(spill_dir):
    return sorted(spill_dir.glob("spill-*.npz"))


class TestEvictionSpills:
    def test_eviction_writes_spill_files(self, tmp_path):
        service = BatchFeatureService(cache_size=2, spill_dir=tmp_path)
        codes = make_codes(5, seed=1)
        for code in codes:
            service.count_vector(code)
        assert service.stats.evictions == 3
        assert service.stats.spills == 3
        assert len(spill_files(tmp_path)) == 3
        assert service.sequence_stats.spills == 3  # counts derive from sequences

    def test_no_spill_dir_means_plain_eviction(self, tmp_path):
        service = BatchFeatureService(cache_size=2)
        for code in make_codes(5, seed=2):
            service.count_vector(code)
        assert service.stats.evictions == 3
        assert service.stats.spills == 0

    def test_spill_reload_is_bit_identical_with_zero_passes(self, tmp_path):
        service = BatchFeatureService(cache_size=2, spill_dir=tmp_path)
        codes = make_codes(6, seed=3)
        for code in codes:
            service.count_vector(code)
        evicted = codes[0]
        passes = service.kernel_passes
        hits = service.stats.hits
        vector = service.count_vector(evicted)
        assert np.array_equal(vector, count_opcodes(evicted))
        assert service.kernel_passes == passes  # reload, not recompute
        assert service.stats.spill_hits == 1
        assert service.stats.hits == hits  # spill hits are not plain hits

    def test_sequence_spill_round_trip(self, tmp_path):
        service = BatchFeatureService(cache_size=2, spill_dir=tmp_path)
        codes = make_codes(6, seed=4)
        service.sequences(codes)
        passes = service.kernel_passes
        got = service.sequence(codes[0])
        want = sequence_batch([codes[0]])[0]
        assert np.array_equal(got.opcodes, want.opcodes)
        assert np.array_equal(got.widths, want.widths)
        assert service.kernel_passes == passes
        assert service.sequence_stats.spill_hits == 1

    def test_ngram_spill_round_trip(self, tmp_path):
        service = BatchFeatureService(cache_size=2, spill_dir=tmp_path)
        codes = make_codes(6, seed=5)
        reference = [
            BatchFeatureService().ngram_codes(code, 2) for code in codes
        ]
        for code in codes:
            service.ngram_codes(code, 2)
        got = service.ngram_codes(codes[0], 2)
        assert np.array_equal(got, reference[0])
        assert service.ngram_stats.spill_hits == 1

    def test_analysis_spill_round_trip(self, tmp_path):
        service = BatchFeatureService(cache_size=2, spill_dir=tmp_path)
        codes = make_codes(6, seed=6)
        for code in codes:
            service.analysis_vector(code)
        passes = service.kernel_passes
        got = service.analysis_vector(codes[0])
        assert np.array_equal(got, cfg_metrics_vector(codes[0]))
        assert service.kernel_passes == passes
        assert service.analysis_stats.spill_hits == 1

    def test_spill_survives_service_close_and_reopen(self, tmp_path):
        first = BatchFeatureService(cache_size=2, spill_dir=tmp_path)
        codes = make_codes(6, seed=7)
        expected = first.count_matrix(codes)
        first.close()
        second = BatchFeatureService(cache_size=8, spill_dir=tmp_path)
        # Entries the first service spilled must serve the second with
        # zero kernel passes; entries it kept in memory (never spilled)
        # are recomputed.
        spilled = {path.name[len("spill-"):-len(".npz")] for path in spill_files(tmp_path)}
        for row, code in enumerate(codes):
            if content_key(code).hex() not in spilled:
                continue
            vector = second.count_vector(code)
            assert np.array_equal(vector, expected[row])
        assert second.kernel_passes == 0
        assert second.stats.spill_hits == len(spilled & {content_key(c).hex() for c in codes})

    def test_spill_hits_count_toward_hit_rate(self, tmp_path):
        service = BatchFeatureService(cache_size=1, spill_dir=tmp_path)
        a, b = make_codes(2, seed=8)
        service.count_vector(a)
        service.count_vector(b)  # evicts + spills a
        service.count_vector(a)  # spill hit
        assert service.stats.spill_hits == 1
        assert service.stats.lookups == 3
        assert service.stats.hit_rate == pytest.approx(1 / 3)

    def test_respilling_an_unchanged_entry_writes_nothing(self, tmp_path):
        service = BatchFeatureService(cache_size=1, spill_dir=tmp_path)
        a, b = make_codes(2, seed=9)
        service.count_vector(a)
        service.count_vector(b)  # spills a
        assert service.stats.spills == 1
        mtime = spill_files(tmp_path)[0].stat().st_mtime_ns
        service.count_vector(a)  # reload a (spills b), evicting b -> a stays
        service.count_vector(b)  # evicts a again — but its file is current
        assert service.stats.spills == 2  # only b's spill was added
        assert spill_files(tmp_path)[0].stat().st_mtime_ns == mtime

    def test_new_view_after_reload_respills(self, tmp_path):
        service = BatchFeatureService(cache_size=1, spill_dir=tmp_path)
        a, b = make_codes(2, seed=10)
        service.sequence(a)
        service.sequence(b)          # spills a (sequence only)
        service.sequence(a)          # reload a from spill
        service.ngram_codes(a, 2)    # new persistable view -> spill is stale
        service.sequence(b)          # evicts a: must rewrite its spill file
        reloaded = BatchFeatureService(cache_size=4, spill_dir=tmp_path)
        got = reloaded.ngram_codes(a, 2)
        assert np.array_equal(got, BatchFeatureService().ngram_codes(a, 2))
        assert reloaded.ngram_stats.spill_hits == 1

    def test_corrupt_spill_file_reads_as_miss_and_is_deleted(self, tmp_path):
        service = BatchFeatureService(cache_size=1, spill_dir=tmp_path)
        a, b = make_codes(2, seed=11)
        service.count_vector(a)
        service.count_vector(b)
        path = spill_files(tmp_path)[0]
        path.write_bytes(b"garbage")
        passes = service.kernel_passes
        vector = service.count_vector(a)
        assert np.array_equal(vector, count_opcodes(a))
        assert service.kernel_passes == passes + 1  # recomputed
        assert service.stats.spill_hits == 0
        assert not path.exists()

    def test_cache_clear_removes_spill_files(self, tmp_path):
        service = BatchFeatureService(cache_size=1, spill_dir=tmp_path)
        for code in make_codes(4, seed=12):
            service.count_vector(code)
        assert spill_files(tmp_path)
        service.cache_clear()
        assert spill_files(tmp_path) == []
        assert service.stats.spills == 0

    def test_cache_size_zero_never_touches_spills(self, tmp_path):
        service = BatchFeatureService(cache_size=0, spill_dir=tmp_path)
        for code in make_codes(3, seed=13):
            service.count_vector(code)
        assert spill_files(tmp_path) == []
        assert service.stats.spills == 0
        assert service.stats.spill_hits == 0

    def test_spill_file_magic(self, tmp_path):
        import zipfile

        service = BatchFeatureService(cache_size=1, spill_dir=tmp_path)
        a, b = make_codes(2, seed=14)
        service.count_vector(a)
        service.count_vector(b)
        path = spill_files(tmp_path)[0]
        with zipfile.ZipFile(path) as archive:
            assert "magic.npy" in archive.namelist()
        data = np.load(path, allow_pickle=False)
        assert str(data["magic"][0]) == SPILL_FILE_MAGIC
