"""Tests for the synthetic contract templates."""

import numpy as np
import pytest

from repro.chain.contracts import ContractLabel
from repro.chain.templates import (
    ALL_FAMILIES,
    BENIGN_FAMILIES,
    PHISHING_FAMILIES,
    build_family_bytecode,
    families_for_label,
    minimal_proxy_bytecode,
)
from repro.evm.disassembler import disassemble_mnemonics
from repro.evm.interpreter import EVMInterpreter


class TestFamilies:
    def test_families_are_labelled_consistently(self):
        assert all(f.label is ContractLabel.BENIGN for f in BENIGN_FAMILIES)
        assert all(f.label is ContractLabel.PHISHING for f in PHISHING_FAMILIES)

    def test_families_for_label(self):
        benign_names = {f.name for f in families_for_label(ContractLabel.BENIGN)}
        phishing_names = {f.name for f in families_for_label(ContractLabel.PHISHING)}
        assert benign_names == {f.name for f in BENIGN_FAMILIES}
        assert phishing_names == {f.name for f in PHISHING_FAMILIES}

    def test_both_labels_have_proxy_families(self):
        assert any(f.is_proxy for f in BENIGN_FAMILIES)
        assert any(f.is_proxy for f in PHISHING_FAMILIES)

    def test_family_names_unique(self):
        names = [f.name for f in ALL_FAMILIES]
        assert len(names) == len(set(names))


class TestMinimalProxy:
    def test_eip1167_layout(self):
        implementation = "0x" + "11" * 20
        code = minimal_proxy_bytecode(implementation)
        assert code.hex().startswith("363d3d373d3d3d363d73")
        assert code.hex().endswith("5af43d82803e903d91602b57fd5bf3")
        assert "11" * 20 in code.hex()

    def test_same_implementation_gives_identical_bytes(self):
        implementation = "0x" + "22" * 20
        assert minimal_proxy_bytecode(implementation) == minimal_proxy_bytecode(implementation)

    def test_invalid_implementation_rejected(self):
        with pytest.raises(ValueError):
            minimal_proxy_bytecode("0x1234")

    def test_proxy_contains_delegatecall(self):
        mnemonics = disassemble_mnemonics(minimal_proxy_bytecode("0x" + "33" * 20))
        assert "DELEGATECALL" in mnemonics


class TestBuildFamilyBytecode:
    @pytest.mark.parametrize("family", [f for f in ALL_FAMILIES if not f.is_proxy], ids=lambda f: f.name)
    def test_every_family_builds_and_terminates(self, family):
        rng = np.random.default_rng(3)
        code = build_family_bytecode(family, rng)
        assert len(code) > 20
        result = EVMInterpreter().execute(code)
        assert result.success or result.reverted, result.error

    def test_prologue_is_solidity_style(self):
        family = BENIGN_FAMILIES[0]
        code = build_family_bytecode(family, np.random.default_rng(0))
        assert disassemble_mnemonics(code)[:3] == ["PUSH1", "PUSH1", "MSTORE"]

    def test_randomness_produces_distinct_bytecodes(self):
        family = BENIGN_FAMILIES[0]
        rng = np.random.default_rng(0)
        codes = {build_family_bytecode(family, rng) for _ in range(10)}
        assert len(codes) == 10

    def test_deterministic_given_rng_seed(self):
        family = PHISHING_FAMILIES[0]
        first = build_family_bytecode(family, np.random.default_rng(7))
        second = build_family_bytecode(family, np.random.default_rng(7))
        assert first == second

    def test_proxy_family_rejected(self):
        proxy = next(f for f in ALL_FAMILIES if f.is_proxy)
        with pytest.raises(ValueError):
            build_family_bytecode(proxy, np.random.default_rng(0))

    def test_mix_bias_changes_output(self):
        family = BENIGN_FAMILIES[0]
        plain = build_family_bytecode(family, np.random.default_rng(5))
        biased = build_family_bytecode(
            family, np.random.default_rng(5), mix_bias={"selfbalance_sweep": 10.0}
        )
        assert plain != biased

    def test_phishing_families_use_drain_primitives_more(self):
        rng = np.random.default_rng(11)
        phishing_counts = 0
        benign_counts = 0
        for _ in range(25):
            phishing_family = PHISHING_FAMILIES[0]
            benign_family = BENIGN_FAMILIES[0]
            phishing_mnemonics = disassemble_mnemonics(build_family_bytecode(phishing_family, rng))
            benign_mnemonics = disassemble_mnemonics(build_family_bytecode(benign_family, rng))
            phishing_counts += phishing_mnemonics.count("SELFBALANCE")
            benign_counts += benign_mnemonics.count("SELFBALANCE")
        assert phishing_counts > benign_counts
