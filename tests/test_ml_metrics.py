"""Tests for classification metrics and AUT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.metrics import (
    METRIC_NAMES,
    MetricReport,
    accuracy_score,
    area_under_time,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)


class TestConfusionMatrix:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 1, 0])
        cm = confusion_matrix(y, y)
        assert cm == {"tp": 2, "tn": 2, "fp": 0, "fn": 0}

    def test_all_wrong(self):
        cm = confusion_matrix(np.array([0, 1]), np.array([1, 0]))
        assert cm == {"tp": 0, "tn": 0, "fp": 1, "fn": 1}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))


class TestBasicMetrics:
    def test_known_values(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        assert accuracy_score(y_true, y_pred) == pytest.approx(4 / 6)
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        y_true = np.array([1, 0])
        y_pred = np.array([0, 0])
        assert precision_score(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_no_positive_samples(self):
        assert recall_score(np.array([0, 0]), np.array([0, 1])) == 0.0

    def test_metric_report(self):
        report = MetricReport.from_predictions(np.array([1, 0, 1]), np.array([1, 0, 0]))
        as_dict = report.as_dict()
        assert set(as_dict) == set(METRIC_NAMES)
        assert as_dict["accuracy"] == pytest.approx(2 / 3)

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_accuracy_bounds(self, bits):
        y = np.array(bits)
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 2, size=len(y))
        value = accuracy_score(y, predictions)
        assert 0.0 <= value <= 1.0

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_f1_between_precision_and_recall_bounds(self, bits):
        y = np.array(bits)
        rng = np.random.default_rng(1)
        predictions = rng.integers(0, 2, size=len(y))
        p = precision_score(y, predictions)
        r = recall_score(y, predictions)
        f = f1_score(y, predictions)
        assert f <= max(p, r) + 1e-12
        assert f >= 0.0


class TestRocAuc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, scores) == 1.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=400)
        scores = rng.random(400)
        assert abs(roc_auc_score(y, scores) - 0.5) < 0.1

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([1, 1]), np.array([0.5, 0.6]))


class TestAreaUnderTime:
    def test_constant_curve(self):
        assert area_under_time([0.8] * 9) == pytest.approx(0.8)

    def test_decaying_curve_lower_than_stable(self):
        stable = area_under_time([0.9] * 9)
        decaying = area_under_time(np.linspace(0.9, 0.3, 9))
        assert decaying < stable

    def test_single_period(self):
        assert area_under_time([0.7]) == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            area_under_time([])

    def test_bounded_by_01_for_bounded_inputs(self):
        values = [0.2, 0.9, 0.4, 1.0, 0.0]
        assert 0.0 <= area_under_time(values) <= 1.0
