"""Tests for the 16 detectors and the model registry."""

import numpy as np
import pytest

from repro.models.base import ModelCategory, validate_labels
from repro.models.escort import ESCORTDetector, VULNERABILITY_CLASSES, structural_vulnerability_label
from repro.models.gpt2 import GPT2Detector
from repro.models.hsc import HSC_FACTORIES, make_random_forest_hsc
from repro.models.registry import (
    DeepModelScale,
    MODEL_SPECS,
    POSTHOC_MODEL_NAMES,
    SCALABILITY_MODEL_NAMES,
    TABLE2_MODEL_NAMES,
    build_model,
    get_model_spec,
)
from repro.models.scsguard import SCSGuardDetector
from repro.models.t5 import T5Detector
from repro.models.vision import make_eca_efficientnet, make_vit_freq, make_vit_r2d2
from repro.evm.assembler import assemble, push


@pytest.fixture(scope="module")
def split(dataset):
    codes = dataset.bytecodes
    labels = dataset.labels
    n_train = int(0.75 * len(codes))
    return codes[:n_train], labels[:n_train], codes[n_train:], labels[n_train:]


class TestBaseInterface:
    def test_validate_labels_accepts_binary(self):
        assert validate_labels([0, 1, 1]).tolist() == [0, 1, 1]

    def test_validate_labels_rejects_multiclass(self):
        with pytest.raises(ValueError):
            validate_labels([0, 1, 2])

    def test_predict_threshold(self, split):
        train_codes, train_labels, test_codes, _ = split
        detector = make_random_forest_hsc(seed=0)
        detector.fit(train_codes, train_labels)
        probabilities = detector.predict_proba(test_codes)
        predictions = detector.predict(test_codes)
        assert np.array_equal(predictions, (probabilities[:, 1] >= 0.5).astype(int))


class TestHSCFamily:
    @pytest.mark.parametrize("name", list(HSC_FACTORIES))
    def test_each_hsc_learns(self, name, split):
        train_codes, train_labels, test_codes, test_labels = split
        detector = HSC_FACTORIES[name](seed=0)
        detector.fit(train_codes, train_labels)
        accuracy = detector.score(test_codes, test_labels)
        assert accuracy > 0.6, f"{name} accuracy {accuracy}"
        assert detector.category is ModelCategory.HISTOGRAM

    def test_probabilities_well_formed(self, split):
        train_codes, train_labels, test_codes, _ = split
        detector = make_random_forest_hsc(seed=1).fit(train_codes, train_labels)
        probabilities = detector.predict_proba(test_codes)
        assert probabilities.shape == (len(test_codes), 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_feature_names_available_after_fit(self, split):
        train_codes, train_labels, _, _ = split
        detector = make_random_forest_hsc(seed=0).fit(train_codes, train_labels)
        assert "PUSH1" in detector.feature_names()


class TestDeepDetectors:
    def test_scsguard_learns(self, split):
        train_codes, train_labels, test_codes, test_labels = split
        scale = DeepModelScale.smoke()
        detector = SCSGuardDetector(
            max_length=scale.max_length,
            d_embed=scale.d_model,
            n_heads=scale.n_heads,
            d_hidden=scale.d_model,
            trainer_config=scale.trainer_config(0),
            seed=0,
        )
        detector.fit(train_codes, train_labels)
        assert detector.score(test_codes, test_labels) > 0.6
        assert detector.category is ModelCategory.LANGUAGE

    @pytest.mark.parametrize("variant", ["alpha", "beta"])
    def test_gpt2_variants_run(self, variant, split):
        train_codes, train_labels, test_codes, _ = split
        detector = GPT2Detector(
            variant=variant, max_length=32, d_model=16, n_layers=1, n_heads=2,
            trainer_config=DeepModelScale.smoke().trainer_config(0), seed=0,
        )
        detector.fit(train_codes[:60], train_labels[:60])
        probabilities = detector.predict_proba(test_codes[:10])
        assert probabilities.shape == (10, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    @pytest.mark.parametrize("variant", ["alpha", "beta"])
    def test_t5_variants_run(self, variant, split):
        train_codes, train_labels, test_codes, _ = split
        detector = T5Detector(
            variant=variant, max_length=32, d_model=16, n_layers=1, n_heads=2,
            trainer_config=DeepModelScale.smoke().trainer_config(0), seed=0,
        )
        detector.fit(train_codes[:60], train_labels[:60])
        assert detector.predict(test_codes[:8]).shape == (8,)

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            GPT2Detector(variant="gamma")
        with pytest.raises(ValueError):
            T5Detector(variant="gamma")

    def test_vision_detectors_run(self, split):
        train_codes, train_labels, test_codes, _ = split
        scale = DeepModelScale.smoke()
        for maker in (make_vit_r2d2, make_vit_freq):
            detector = maker(
                image_size=scale.image_size,
                trainer_config=scale.vision_trainer_config(0),
                seed=0,
                d_model=16,
                n_layers=1,
                n_heads=2,
                patch_size=4,
            )
            detector.fit(train_codes[:60], train_labels[:60])
            assert detector.predict(test_codes[:6]).shape == (6,)
        eca = make_eca_efficientnet(
            image_size=scale.image_size, trainer_config=scale.vision_trainer_config(0), seed=0
        )
        eca.fit(train_codes[:60], train_labels[:60])
        assert eca.predict_proba(test_codes[:6]).shape == (6, 2)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            SCSGuardDetector().predict_proba([b"\x00"])


class TestESCORT:
    def test_structural_labels_cover_classes(self, bytecodes):
        labels = {structural_vulnerability_label(code) for code in bytecodes[:80]}
        assert labels <= set(range(len(VULNERABILITY_CLASSES)))
        assert len(labels) >= 2

    def test_delegatecall_class(self):
        code = assemble([push(0, 1)] * 6 + ["GAS", "DELEGATECALL", "STOP"])
        assert VULNERABILITY_CLASSES[structural_vulnerability_label(code)] == "delegatecall_injection"

    def test_escort_transfer_learning_is_weak(self, split):
        # The paper's negative result: ESCORT's frozen vulnerability features
        # transfer poorly to phishing detection.
        train_codes, train_labels, test_codes, test_labels = split
        detector = ESCORTDetector(pretrain_epochs=2, transfer_epochs=2, seed=0)
        detector.fit(train_codes, train_labels)
        accuracy = detector.score(test_codes, test_labels)
        assert accuracy < 0.85
        assert detector.category is ModelCategory.VULNERABILITY

    def test_trunk_frozen_during_transfer(self, split):
        train_codes, train_labels, _, _ = split
        detector = ESCORTDetector(pretrain_epochs=1, transfer_epochs=1, seed=0)
        detector.fit(train_codes[:50], train_labels[:50])
        # After fit, rerun only phase 2 manually and check trunk unchanged.
        trunk_before = [p.data.copy() for p in detector.network.trunk.parameters()]
        inputs = detector._embed(train_codes[:20])
        detector._train_phase(
            inputs,
            train_labels[:20],
            detector.network.phishing_branch.parameters(),
            lambda x: detector.network.phishing_branch(detector.network.features(x).detach()),
            epochs=1,
        )
        trunk_after = [p.data for p in detector.network.trunk.parameters()]
        assert all(np.array_equal(a, b) for a, b in zip(trunk_before, trunk_after))


class TestRegistry:
    def test_all_16_models_registered(self):
        assert len(TABLE2_MODEL_NAMES) == 16
        assert set(TABLE2_MODEL_NAMES) == set(MODEL_SPECS)

    def test_posthoc_excludes_escort_and_beta_variants(self):
        assert len(POSTHOC_MODEL_NAMES) == 13
        assert "ESCORT" not in POSTHOC_MODEL_NAMES
        assert "GPT-2b" not in POSTHOC_MODEL_NAMES
        assert "T5b" not in POSTHOC_MODEL_NAMES

    def test_scalability_models_are_family_bests(self):
        assert SCALABILITY_MODEL_NAMES == ["Random Forest", "ECA+EfficientNet", "SCSGuard"]

    def test_categories_counts_match_paper(self):
        categories = [MODEL_SPECS[name].category for name in TABLE2_MODEL_NAMES]
        assert categories.count(ModelCategory.HISTOGRAM) == 7
        assert categories.count(ModelCategory.VISION) == 3
        assert categories.count(ModelCategory.LANGUAGE) == 5
        assert categories.count(ModelCategory.VULNERABILITY) == 1

    def test_build_model_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("NotAModel")

    def test_get_model_spec(self):
        spec = get_model_spec("Random Forest")
        assert spec.category is ModelCategory.HISTOGRAM

    def test_build_each_model_instantiates(self):
        scale = DeepModelScale.smoke()
        for name in TABLE2_MODEL_NAMES:
            detector = build_model(name, scale=scale, seed=0)
            assert hasattr(detector, "fit")
            assert detector.category is MODEL_SPECS[name].category

    def test_scale_presets(self):
        assert DeepModelScale.paper().image_size == 224
        assert DeepModelScale.smoke().image_size <= DeepModelScale.ci().image_size
        config = DeepModelScale.ci().trainer_config(seed=5)
        assert config.seed == 5
