"""Golden-vector regression tests for the sequence-derived feature views.

Analogous to ``test_feature_golden.py`` for histograms: exact tokenizer
id-sequences and frequency-image pixel values are pinned for deterministic
template bytecodes, so any future change to the sequence kernel, the batch
service or the extractors that silently drifts these features fails loudly
here.  Both the fast and the legacy path are asserted against the same
goldens, keeping them anchored to one reference.

The float literals are exact: Python ``repr`` round-trips IEEE doubles, and
both paths are required to be bit-identical to them.
"""

import numpy as np
import pytest

from repro.chain.templates import (
    ALL_FAMILIES,
    build_family_bytecode,
    minimal_proxy_bytecode,
)
from repro.features.batch import BatchFeatureService
from repro.features.image import FrequencyImageEncoder
from repro.features.tokenizer import OpcodeTokenizer

#: Token ids at max_length=48 (default operand buckets + <cls>), keyed by
#: (template, rng seed).  The minimal proxy is bit-exact bytecode with no
#: RNG involved — the strongest golden anchor.
TOKEN_GOLDENS = {
    ("minimal_proxy", 0): [
        2, 44, 51, 51, 45, 51, 51, 51, 44, 51, 95, 10, 73, 149, 51, 110,
        108, 52, 124, 51, 125, 76, 5, 70, 152, 74, 148, 3, 0, 0, 0, 0,
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    ],
    ("erc20_token", 11): [
        2, 76, 5, 76, 5, 65, 76, 5, 44, 23, 77, 6, 70, 76, 5, 43,
        76, 5, 35, 108, 79, 7, 27, 77, 6, 70, 108, 79, 7, 27, 77, 6,
        70, 108, 79, 7, 27, 77, 6, 70, 108, 79, 7, 27, 77, 6, 70, 74,
    ],
    ("sweeper_backdoor", 22): [
        2, 76, 5, 76, 5, 65, 76, 5, 44, 23, 77, 6, 70, 76, 5, 43,
        76, 5, 35, 108, 79, 7, 27, 77, 6, 70, 108, 79, 7, 27, 77, 6,
        70, 74, 63, 76, 5, 108, 108, 108, 61, 41, 73, 146, 63, 44, 76, 5,
    ],
}

#: Scale factor of the 4×4 frequency-image encoder fitted on the three
#: template bytecodes (in TOKEN_GOLDENS key order).
IMAGE_GOLDEN_SCALE = 1.511737089201878

#: Exact (3, 4, 4) frequency-image tensors of two templates under that fit.
IMAGE_GOLDENS = {
    ("minimal_proxy", 0): [
        [[0.03286384976525822, 0.04225352112676057, 0.04225352112676057, 0.009389671361502348],
         [0.04225352112676057, 0.04225352112676057, 0.04225352112676057, 0.03286384976525822],
         [0.04225352112676057, 0.004694835680751174, 0.014084507042253521, 0.014084507042253521],
         [0.04225352112676057, 0.004694835680751174, 0.11267605633802817, 0.009389671361502348]],
        [[1.0, 1.0, 1.0, 1.0],
         [1.0, 1.0, 1.0, 1.0],
         [1.0, 0.004694835680751174, 1.0, 1.0],
         [1.0, 1.0, 1.0, 1.0]],
        [[0.19248826291079812, 0.19248826291079812, 0.19248826291079812, 0.9061032863849765],
         [0.19248826291079812, 0.19248826291079812, 0.19248826291079812, 0.19248826291079812],
         [0.19248826291079812, 0.9061032863849765, 0.19248826291079812, 0.07511737089201878],
         [0.19248826291079812, 0.9061032863849765, 0.9061032863849765, 0.9061032863849765]],
    ],
    ("sweeper_backdoor", 22): [
        [[0.37089201877934275, 0.37089201877934275, 0.07981220657276995, 0.37089201877934275],
         [0.03286384976525822, 0.02347417840375587, 0.08450704225352114, 0.07042253521126761],
         [0.37089201877934275, 0.018779342723004695, 0.37089201877934275, 0.009389671361502348],
         [0.11267605633802817, 0.04225352112676057, 0.03286384976525822, 0.08450704225352114]],
        [[0.009389671361502348, 0.028169014084507043, 1.0, 0.014084507042253521],
         [1.0, 1.0, 0.02347417840375587, 1.0],
         [0.16901408450704228, 1.0, 0.009389671361502348, 1.0],
         [1.0, 0.004694835680751174, 1.0, 0.02347417840375587]],
        [[0.9061032863849765, 0.9061032863849765, 0.9061032863849765, 0.9061032863849765],
         [0.19248826291079812, 0.9061032863849765, 0.9061032863849765, 0.07042253521126761],
         [0.9061032863849765, 0.9061032863849765, 0.9061032863849765, 0.9061032863849765],
         [0.9061032863849765, 0.9061032863849765, 0.9061032863849765, 0.9061032863849765]],
    ],
}


def family_bytecode(name: str, seed: int) -> bytes:
    family = next(f for f in ALL_FAMILIES if f.name == name)
    return build_family_bytecode(family, np.random.default_rng(seed))


def golden_bytecodes():
    codes = {}
    for (name, seed) in TOKEN_GOLDENS:
        if name == "minimal_proxy":
            codes[(name, seed)] = minimal_proxy_bytecode("0x" + "ab" * 20)
        else:
            codes[(name, seed)] = family_bytecode(name, seed)
    return codes


@pytest.mark.parametrize("use_fast_path", [True, False], ids=["fast", "legacy"])
class TestTokenizerGoldens:
    def test_token_ids_pinned(self, use_fast_path):
        codes = golden_bytecodes()
        tokenizer = OpcodeTokenizer(
            max_length=48,
            service=BatchFeatureService() if use_fast_path else None,
            use_fast_path=use_fast_path,
        )
        for key, code in codes.items():
            assert tokenizer.encode_one(code).tolist() == TOKEN_GOLDENS[key], key

    def test_transform_rows_pinned(self, use_fast_path):
        codes = golden_bytecodes()
        keys = list(codes)
        tokenizer = OpcodeTokenizer(
            max_length=48,
            service=BatchFeatureService() if use_fast_path else None,
            use_fast_path=use_fast_path,
        )
        matrix = tokenizer.transform([codes[key] for key in keys])
        expected = np.array([TOKEN_GOLDENS[key] for key in keys], dtype=np.int64)
        assert np.array_equal(matrix, expected)


@pytest.mark.parametrize("use_fast_path", [True, False], ids=["fast", "legacy"])
class TestFrequencyImageGoldens:
    def _fitted_encoder(self, use_fast_path):
        encoder = FrequencyImageEncoder(
            image_size=4,
            service=BatchFeatureService() if use_fast_path else None,
            use_fast_path=use_fast_path,
        )
        encoder.fit(list(golden_bytecodes().values()))
        return encoder

    def test_fit_scale_pinned(self, use_fast_path):
        encoder = self._fitted_encoder(use_fast_path)
        assert encoder._scale == IMAGE_GOLDEN_SCALE

    def test_pixels_pinned(self, use_fast_path):
        codes = golden_bytecodes()
        encoder = self._fitted_encoder(use_fast_path)
        for key, golden in IMAGE_GOLDENS.items():
            image = encoder.encode_one(codes[key])
            assert image.shape == (3, 4, 4)
            assert np.array_equal(image, np.array(golden, dtype=np.float64)), key
