"""Shared fixtures: a small deterministic corpus and dataset reused by tests.

Also hosts the dependency-free async harness the gateway tests run on:
``event_loop_thread`` (a private asyncio loop on a daemon thread, driven
synchronously with ``run``) and ``free_port``, so tier 1 exercises the
asyncio HTTP server without ``pytest-asyncio``.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import numpy as np
import pytest

from repro.chain.generator import ContractCorpusGenerator, CorpusConfig
from repro.core.config import Scale
from repro.core.dataset import PhishingDataset


class EventLoopThread:
    """A dedicated asyncio event loop running on a daemon thread.

    Synchronous test bodies drive async server code by submitting
    coroutines with :meth:`run`; the loop is torn down by :meth:`close`.
    """

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="test-event-loop", daemon=True
        )
        self._thread.start()

    def run(self, coroutine, timeout: float = 30.0):
        """Run ``coroutine`` on the loop and block for its result."""
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result(timeout)

    def close(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()


@pytest.fixture()
def event_loop_thread():
    """A fresh background event loop per test (no pytest-asyncio needed)."""
    loop_thread = EventLoopThread()
    yield loop_thread
    loop_thread.close()


def free_tcp_port() -> int:
    """A currently free localhost TCP port (bind-to-zero probe)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture()
def free_port() -> int:
    return free_tcp_port()


@pytest.fixture(scope="session")
def smoke_scale() -> Scale:
    """The smallest experiment scale (used throughout the unit tests)."""
    return Scale.smoke()


@pytest.fixture(scope="session")
def corpus(smoke_scale):
    """A small synthetic corpus generated once per test session."""
    return ContractCorpusGenerator(smoke_scale.corpus).generate()


@pytest.fixture(scope="session")
def dataset(corpus, smoke_scale) -> PhishingDataset:
    """A balanced deduplicated dataset built from the session corpus."""
    return PhishingDataset.build(
        corpus.records, target_size=smoke_scale.dataset_size, seed=smoke_scale.seed
    )


@pytest.fixture(scope="session")
def bytecodes(dataset):
    """Raw bytecodes of the session dataset."""
    return dataset.bytecodes


@pytest.fixture(scope="session")
def labels(dataset) -> np.ndarray:
    """Binary labels of the session dataset."""
    return dataset.labels


@pytest.fixture(scope="session")
def toy_classification():
    """A small separable numeric classification problem for the ML substrate."""
    rng = np.random.default_rng(42)
    n, d = 240, 12
    X = rng.normal(size=(n, d))
    weights = rng.normal(size=d)
    y = (X @ weights + 0.3 * rng.normal(size=n) > 0).astype(int)
    return X, y
