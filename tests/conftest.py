"""Shared fixtures: a small deterministic corpus and dataset reused by tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.generator import ContractCorpusGenerator, CorpusConfig
from repro.core.config import Scale
from repro.core.dataset import PhishingDataset


@pytest.fixture(scope="session")
def smoke_scale() -> Scale:
    """The smallest experiment scale (used throughout the unit tests)."""
    return Scale.smoke()


@pytest.fixture(scope="session")
def corpus(smoke_scale):
    """A small synthetic corpus generated once per test session."""
    return ContractCorpusGenerator(smoke_scale.corpus).generate()


@pytest.fixture(scope="session")
def dataset(corpus, smoke_scale) -> PhishingDataset:
    """A balanced deduplicated dataset built from the session corpus."""
    return PhishingDataset.build(
        corpus.records, target_size=smoke_scale.dataset_size, seed=smoke_scale.seed
    )


@pytest.fixture(scope="session")
def bytecodes(dataset):
    """Raw bytecodes of the session dataset."""
    return dataset.bytecodes


@pytest.fixture(scope="session")
def labels(dataset) -> np.ndarray:
    """Binary labels of the session dataset."""
    return dataset.labels


@pytest.fixture(scope="session")
def toy_classification():
    """A small separable numeric classification problem for the ML substrate."""
    rng = np.random.default_rng(42)
    n, d = 240, 12
    X = rng.normal(size=(n, d))
    weights = rng.normal(size=d)
    y = (X @ weights + 0.3 * rng.normal(size=n) > 0).astype(int)
    return X, y
