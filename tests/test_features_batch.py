"""Tests for the batch feature-extraction service (cache + workers + projection)."""

import numpy as np
import pytest

from repro.evm.fastcount import count_opcodes
from repro.features.batch import (
    BatchFeatureService,
    VocabularyProjection,
    get_default_service,
    set_default_service,
    use_service,
)
from repro.features.histogram import (
    OpcodeHistogramExtractor,
    opcode_usage_distribution,
)


def make_codes(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=int(rng.integers(1, 200)), dtype=np.uint8).tobytes()
        for _ in range(n)
    ]


class TestCacheBehaviour:
    def test_hit_miss_accounting(self):
        service = BatchFeatureService(cache_size=16)
        codes = make_codes(4)
        service.count_matrix(codes)
        assert service.stats.misses == 4
        assert service.stats.hits == 0
        service.count_matrix(codes)
        assert service.stats.misses == 4
        assert service.stats.hits == 4
        assert service.stats.hit_rate == pytest.approx(0.5)

    def test_duplicates_counted_once(self):
        service = BatchFeatureService(cache_size=16)
        code = make_codes(1)[0]
        matrix = service.count_matrix([code, code, code])
        # Three lookups, but only one distinct bytecode is ever computed.
        assert service.stats.misses == 3
        assert len(service) == 1
        assert np.array_equal(matrix[0], matrix[1])
        assert np.array_equal(matrix[0], matrix[2])

    def test_eviction_at_capacity(self):
        service = BatchFeatureService(cache_size=3)
        codes = make_codes(5, seed=1)
        for code in codes:
            service.count_vector(code)
        assert len(service) == 3
        assert service.stats.evictions == 2
        # The least recently used entries (first two) were evicted.
        service.count_vector(codes[0])
        assert service.stats.misses == 6

    def test_lru_ordering(self):
        service = BatchFeatureService(cache_size=2)
        a, b, c = make_codes(3, seed=2)
        service.count_vector(a)
        service.count_vector(b)
        service.count_vector(a)  # refresh a; b is now the LRU entry
        service.count_vector(c)  # evicts b
        hits_before = service.stats.hits
        service.count_vector(a)
        assert service.stats.hits == hits_before + 1
        misses_before = service.stats.misses
        service.count_vector(b)
        assert service.stats.misses == misses_before + 1

    def test_per_view_eviction_accounting(self):
        service = BatchFeatureService(cache_size=2)
        a, b, c = make_codes(3, seed=11)
        service.sequence(a)
        service.ngram_codes(a, 3)
        service.count_vector(b)
        service.count_vector(c)  # evicts a, which held a sequence and n-grams
        assert service.stats.evictions == 1
        assert service.sequence_stats.evictions == 1
        assert service.ngram_stats.evictions == 1

    def test_cache_disabled(self):
        service = BatchFeatureService(cache_size=0)
        code = make_codes(1)[0]
        service.count_vector(code)
        service.count_vector(code)
        assert len(service) == 0
        assert service.stats.hits == 0
        assert service.stats.misses == 2

    def test_cached_vectors_are_read_only(self):
        service = BatchFeatureService()
        vector = service.count_vector(make_codes(1)[0])
        with pytest.raises(ValueError):
            vector[0] = 99

    def test_cache_clear(self):
        service = BatchFeatureService()
        service.count_matrix(make_codes(3))
        service.cache_clear()
        assert len(service) == 0
        assert service.stats.lookups == 0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BatchFeatureService(cache_size=-1)
        with pytest.raises(ValueError):
            BatchFeatureService(chunk_size=0)

    def test_shrinking_capacity_evicts_immediately(self):
        service = BatchFeatureService(cache_size=8)
        service.count_matrix(make_codes(6, seed=7))
        service.cache_size = 2
        assert len(service) == 2
        assert service.stats.evictions == 4

    def test_disabling_capacity_clears_cache(self):
        service = BatchFeatureService(cache_size=8)
        service.count_matrix(make_codes(4, seed=8))
        service.cache_size = 0
        assert len(service) == 0
        assert service.stats.evictions == 4


class TestKernelPassAccountingWithoutCache:
    """``kernel_passes`` must count real disassembly work when caching is off.

    With ``cache_size=0`` every put is a no-op, so the old
    ``_record_pass(self._sequence_put(...))`` pattern silently under-counted
    on some paths and over-counted on none — the entry points disagreed.
    The rule now lives in one place (``_install_sequence``): a fresh kernel
    run counts exactly once whether or not its result could be cached.
    """

    def test_count_vector_counts_each_call(self):
        service = BatchFeatureService(cache_size=0)
        code = make_codes(1, seed=20)[0]
        service.count_vector(code)
        assert service.kernel_passes == 1
        for _ in range(2):
            service.count_vector(code)
        assert service.kernel_passes == 3

    def test_count_matrix_counts_unique_codes(self):
        service = BatchFeatureService(cache_size=0)
        a, b = make_codes(2, seed=21)
        service.count_matrix([a, b, a])
        assert service.kernel_passes == 2

    def test_sequences_counts_unique_codes(self):
        service = BatchFeatureService(cache_size=0)
        a, b = make_codes(2, seed=22)
        service.sequences([a, b, a])
        assert service.kernel_passes == 2

    def test_single_sequence_counts_each_call(self):
        service = BatchFeatureService(cache_size=0)
        code = make_codes(1, seed=23)[0]
        for _ in range(3):
            service.sequence(code)
        assert service.kernel_passes == 3

    def test_mixed_batch_entry_points_accumulate(self):
        service = BatchFeatureService(cache_size=0)
        a, b = make_codes(2, seed=24)
        service.count_matrix([a, b, a])
        service.sequences([a, b])
        assert service.kernel_passes == 4

    def test_analysis_matrix_counts_sequence_passes_only(self):
        # Analysis vectors run the CFG pass, not the sequence kernel; only
        # the sequence decode behind each unique code counts — and with the
        # cache off, the per-row pre-sweep must not double-charge it.
        service = BatchFeatureService(cache_size=0)
        a, b = make_codes(2, seed=25)
        service.analysis_matrix([a, b, a])
        assert service.kernel_passes == 3

    def test_cached_reference_counts_once_per_unique(self):
        service = BatchFeatureService(cache_size=8)
        a, b = make_codes(2, seed=24)
        service.count_matrix([a, b, a])
        service.sequences([a, b])
        assert service.kernel_passes == 2


class TestResultsInvariance:
    def test_identical_with_caching_on_and_off(self):
        codes = make_codes(30, seed=3)
        cached = BatchFeatureService(cache_size=64).count_matrix(codes)
        uncached = BatchFeatureService(cache_size=0).count_matrix(codes)
        assert np.array_equal(cached, uncached)

    def test_identical_workers_1_vs_n(self):
        codes = make_codes(60, seed=4)
        serial = BatchFeatureService(max_workers=1).count_matrix(codes)
        threaded = BatchFeatureService(max_workers=4, chunk_size=8).count_matrix(codes)
        assert np.array_equal(serial, threaded)

    def test_identical_across_sequential_chunk_sizes(self):
        codes = make_codes(25, seed=9)
        whole = BatchFeatureService(chunk_size=64).count_matrix(codes)
        sliced = BatchFeatureService(chunk_size=1).count_matrix(codes)
        assert np.array_equal(whole, sliced)

    def test_matches_single_kernel(self):
        codes = make_codes(10, seed=5)
        matrix = BatchFeatureService().count_matrix(codes)
        for row, code in enumerate(codes):
            assert np.array_equal(matrix[row], count_opcodes(code))

    def test_extractor_fast_path_matches_legacy(self, bytecodes):
        sample = bytecodes[:30]
        legacy = OpcodeHistogramExtractor(use_fast_path=False)
        fast = OpcodeHistogramExtractor(service=BatchFeatureService())
        legacy_features = legacy.fit_transform(sample)
        fast_features = fast.fit_transform(sample)
        assert legacy.feature_names() == fast.feature_names()
        assert np.array_equal(legacy_features, fast_features)

    def test_extractor_fast_path_matches_legacy_normalized(self, bytecodes):
        sample = bytecodes[:20]
        legacy = OpcodeHistogramExtractor(normalize=True, use_fast_path=False)
        fast = OpcodeHistogramExtractor(normalize=True, service=BatchFeatureService())
        assert np.array_equal(legacy.fit_transform(sample), fast.fit_transform(sample))


class TestVocabularyProjection:
    def test_unknown_mnemonics_project_to_zero(self):
        projection = VocabularyProjection.for_mnemonics(["PUSH1", "BOGUS", "STOP"])
        counts = np.zeros((1, 256), dtype=np.int64)
        counts[0, 0x60] = 3
        counts[0, 0x00] = 1
        features = projection.apply(counts)
        assert features.shape == (1, 3)
        assert features[0].tolist() == [3.0, 0.0, 1.0]

    def test_projection_dtype_is_float64(self):
        projection = VocabularyProjection.for_mnemonics(["ADD"])
        assert projection.apply(np.zeros((2, 256), dtype=np.int64)).dtype == np.float64


class TestDefaultService:
    def test_default_service_is_shared(self):
        set_default_service(None)
        assert get_default_service() is get_default_service()

    def test_use_service_swaps_and_restores(self):
        original = get_default_service()
        scoped = BatchFeatureService()
        with use_service(scoped) as active:
            assert active is scoped
            assert get_default_service() is scoped
        assert get_default_service() is original

    def test_extractor_resolves_default_lazily(self):
        scoped = BatchFeatureService()
        with use_service(scoped):
            extractor = OpcodeHistogramExtractor()
            assert extractor.service is scoped

    def test_explicit_empty_service_is_not_dropped(self):
        # An *empty* service is falsy (len() == 0), so ``service or default``
        # would silently reroute extraction to the process default; callers
        # passing a fresh service must still get their own cache populated.
        scoped = BatchFeatureService()
        assert len(scoped) == 0
        opcode_usage_distribution(make_codes(3, seed=6), ["PUSH1"], service=scoped)
        assert scoped.stats.lookups == 3
        assert len(scoped) > 0


class TestRawByteViews:
    """The memory-only byte-count and R2D2-image views (ESCORT / vision)."""

    def test_byte_counts_match_numpy_reference(self):
        service = BatchFeatureService()
        codes = make_codes(5, seed=11) + [b""]
        matrix = service.byte_count_matrix(codes)
        for row, code in enumerate(codes):
            expected = np.bincount(
                np.frombuffer(code, dtype=np.uint8), minlength=256
            ) if code else np.zeros(256, dtype=np.int64)
            assert np.array_equal(matrix[row], expected)
            assert int(matrix[row].sum()) == len(code)

    def test_byte_view_is_cached_and_accounted(self):
        service = BatchFeatureService()
        codes = make_codes(4, seed=12)
        service.byte_count_matrix(codes)
        assert service.byte_stats.misses == 4
        service.byte_count_matrix(codes)
        assert service.byte_stats.hits == 4
        # No disassembly happens for the byte view.
        assert service.kernel_passes == 0

    def test_r2d2_image_matches_encoder_legacy_path(self):
        from repro.features.image import R2D2ImageEncoder

        service = BatchFeatureService()
        codes = make_codes(4, seed=13) + [b""]
        fast = R2D2ImageEncoder(image_size=8, service=service)
        legacy = R2D2ImageEncoder(image_size=8, use_fast_path=False)
        assert np.array_equal(fast.transform(codes), legacy.transform(codes))
        for code in codes:
            assert np.array_equal(fast.encode_one(code), legacy.encode_one(code))

    def test_image_view_cached_per_size(self):
        service = BatchFeatureService()
        code = make_codes(1, seed=14)[0]
        small = service.r2d2_image(code, 4)
        again = service.r2d2_image(code, 4)
        assert small is again  # served the cached (frozen) tensor
        large = service.r2d2_image(code, 8)
        assert large.shape == (3, 8, 8)
        assert service.image_stats.hits == 1
        assert service.image_stats.misses == 2

    def test_caching_disabled_still_serves_views(self):
        service = BatchFeatureService(cache_size=0)
        codes = make_codes(3, seed=15)
        reference = BatchFeatureService()
        assert np.array_equal(
            service.byte_count_matrix(codes), reference.byte_count_matrix(codes)
        )
        assert np.array_equal(
            service.r2d2_images(codes, 4), reference.r2d2_images(codes, 4)
        )
        assert len(service) == 0

    def test_aggregate_stats_sums_all_views(self):
        service = BatchFeatureService()
        codes = make_codes(3, seed=16)
        service.count_matrix(codes)
        service.byte_count_matrix(codes)
        service.r2d2_images(codes, 4)
        service.ngram_codes_batch(codes, 3)
        total = service.aggregate_stats()
        assert total.lookups == (
            service.stats.lookups
            + service.sequence_stats.lookups
            + service.ngram_stats.lookups
            + service.byte_stats.lookups
            + service.image_stats.lookups
        )
        assert total.hits == (
            service.stats.hits
            + service.sequence_stats.hits
            + service.ngram_stats.hits
            + service.byte_stats.hits
            + service.image_stats.hits
        )

    def test_cache_clear_resets_raw_byte_stats(self):
        service = BatchFeatureService()
        codes = make_codes(2, seed=17)
        service.byte_count_matrix(codes)
        service.r2d2_images(codes, 4)
        service.cache_clear()
        assert service.byte_stats.lookups == 0
        assert service.image_stats.lookups == 0

    def test_raw_views_survive_save_load_roundtrip(self, tmp_path):
        # Raw-byte views are memory-only: a reloaded cache simply recomputes
        # them; the persisted views (counts/sequences/ngrams) are unaffected.
        service = BatchFeatureService()
        codes = make_codes(3, seed=18)
        service.count_matrix(codes)
        images = service.r2d2_images(codes, 4)
        path = tmp_path / "cache.npz"
        service.save(path)
        fresh = BatchFeatureService()
        fresh.load(path)
        assert np.array_equal(fresh.count_matrix(codes), service.count_matrix(codes))
        assert fresh.kernel_passes == service.kernel_passes
        assert np.array_equal(fresh.r2d2_images(codes, 4), images)
