"""Equivalence tests for the process-pool extraction backend.

The ``executor="process"`` backend of :class:`BatchFeatureService` ships
chunk byte blobs to worker interpreters and merges the returned arrays into
the parent cache; these tests pin it bit-identical to the default thread
backend across every feature view, including the caching-disabled pure
count-kernel route, so the backend choice can never change a feature matrix.
"""

import numpy as np
import pytest

from repro.features.batch import (
    BatchFeatureService,
    EXECUTOR_BACKENDS,
    VocabularyProjection,
)


def make_codes(n: int, seed: int = 0, max_len: int = 400):
    rng = np.random.default_rng(seed)
    codes = [
        rng.integers(0, 256, size=int(rng.integers(1, max_len)), dtype=np.uint8).tobytes()
        for _ in range(n)
    ]
    # Mix in duplicates (proxy clones) and an empty bytecode.
    codes += codes[: n // 4] + [b""]
    rng.shuffle(codes)
    return codes


def backend_pair(seed, **kwargs):
    thread = BatchFeatureService(executor="thread", **kwargs)
    process = BatchFeatureService(executor="process", **kwargs)
    return make_codes(48, seed=seed), thread, process


class TestProcessBackendEquivalence:
    def test_count_matrix_bit_identical(self):
        codes, thread, process = backend_pair(1, max_workers=3, chunk_size=4)
        assert np.array_equal(thread.count_matrix(codes), process.count_matrix(codes))
        # Unique extraction work is accounted identically on both backends.
        assert thread.kernel_passes == process.kernel_passes

    def test_sequences_bit_identical(self):
        codes, thread, process = backend_pair(2, max_workers=3, chunk_size=4)
        for ours, theirs in zip(thread.sequences(codes), process.sequences(codes)):
            assert np.array_equal(ours.opcodes, theirs.opcodes)
            assert np.array_equal(ours.widths, theirs.widths)

    def test_caching_disabled_count_kernel_route(self):
        # cache_size=0 takes the pure count-kernel path through the pool.
        codes, thread, process = backend_pair(
            3, cache_size=0, max_workers=2, chunk_size=4
        )
        assert np.array_equal(thread.count_matrix(codes), process.count_matrix(codes))
        assert thread.kernel_passes == process.kernel_passes > 0

    def test_transform_bit_identical(self):
        codes, thread, process = backend_pair(4, max_workers=2, chunk_size=8)
        projection = VocabularyProjection.for_mnemonics(["PUSH1", "ADD", "MSTORE", "INVALID"])
        assert np.array_equal(
            thread.transform(codes, projection), process.transform(codes, projection)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_corpora(self, seed):
        # The acceptance-criterion sweep: fresh randomized corpora, all views.
        codes = make_codes(30, seed=100 + seed, max_len=600)
        thread = BatchFeatureService(max_workers=4, chunk_size=3)
        process = BatchFeatureService(max_workers=4, chunk_size=3, executor="process")
        assert np.array_equal(thread.count_matrix(codes), process.count_matrix(codes))
        for ours, theirs in zip(thread.sequences(codes), process.sequences(codes)):
            assert np.array_equal(ours.opcodes, theirs.opcodes)
            assert np.array_equal(ours.widths, theirs.widths)
        for code in codes[:5]:
            assert np.array_equal(
                thread.ngram_codes(code, 2), process.ngram_codes(code, 2)
            )
        assert thread.kernel_passes == process.kernel_passes

    def test_process_results_populate_parent_cache(self):
        codes, _, process = backend_pair(5, max_workers=3, chunk_size=4)
        process.count_matrix(codes)
        passes = process.kernel_passes
        # A second sweep is served entirely from the merged parent cache.
        process.count_matrix(codes)
        process.sequences(codes)
        assert process.kernel_passes == passes


class TestExecutorValidation:
    def test_backends_registry(self):
        assert set(EXECUTOR_BACKENDS) == {"thread", "process"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            BatchFeatureService(executor="fibers")

    def test_serial_path_ignores_backend(self):
        # max_workers=None never builds a pool, whatever the backend says.
        service = BatchFeatureService(executor="process")
        codes = make_codes(6, seed=6)
        reference = BatchFeatureService()
        assert np.array_equal(
            service.count_matrix(codes), reference.count_matrix(codes)
        )
        assert service._pool is None


class TestPoolLifecycle:
    def test_pool_reused_across_batches_and_recreated_after_close(self):
        with BatchFeatureService(max_workers=2, chunk_size=2) as service:
            first = service._get_pool()
            assert service._get_pool() is first  # persistent, not per-call
            service.close()
            assert service._pool is None
            codes = make_codes(10, seed=7)
            matrix = service.count_matrix(codes)  # transparently rebuilds
            assert service._pool is not None and service._pool is not first
            assert np.array_equal(matrix, BatchFeatureService().count_matrix(codes))
        assert service._pool is None  # context exit closed it again

    def test_warm_pool_noop_without_workers(self):
        service = BatchFeatureService()
        service.warm_pool()
        assert service._pool is None
        with BatchFeatureService(max_workers=2) as pooled:
            pooled.warm_pool()
            assert pooled._pool is not None
