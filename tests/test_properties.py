"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites with randomized invariants spanning
the EVM interpreter (arithmetic semantics), the feature extractors
(histogram/label consistency) and the statistics (correction monotonicity).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evm.assembler import assemble, push
from repro.evm.interpreter import EVMInterpreter
from repro.features.histogram import OpcodeHistogramExtractor
from repro.ml.metrics import MetricReport, accuracy_score, f1_score
from repro.stats.correction import holm_bonferroni
from repro.stats.effect_size import cliffs_delta

WORD = (1 << 256) - 1
_interpreter = EVMInterpreter(gas_limit=10_000)


def _run_binary(mnemonic: str, a: int, b: int) -> int:
    """Execute ``a <op> b`` on the interpreter and return the result word.

    Operands are pushed so that ``b`` is on top of the stack (the EVM pops
    the top operand first).
    """
    code = assemble(
        [push(a, 32), push(b, 32), mnemonic, push(0, 1), "MSTORE", push(32, 1), push(0, 1), "RETURN"]
    )
    result = _interpreter.execute(code)
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


word_values = st.integers(min_value=0, max_value=WORD)


class TestInterpreterArithmeticProperties:
    @given(word_values, word_values)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_modular_addition(self, a, b):
        assert _run_binary("ADD", a, b) == (a + b) % (1 << 256)

    @given(word_values, word_values)
    @settings(max_examples=40, deadline=None)
    def test_mul_matches_modular_multiplication(self, a, b):
        assert _run_binary("MUL", a, b) == (a * b) % (1 << 256)

    @given(word_values, word_values)
    @settings(max_examples=40, deadline=None)
    def test_and_or_xor_consistency(self, a, b):
        and_result = _run_binary("AND", a, b)
        or_result = _run_binary("OR", a, b)
        xor_result = _run_binary("XOR", a, b)
        assert and_result ^ xor_result == or_result

    @given(word_values)
    @settings(max_examples=30, deadline=None)
    def test_iszero_only_for_zero(self, a):
        code = assemble(
            [push(a, 32), "ISZERO", push(0, 1), "MSTORE", push(32, 1), push(0, 1), "RETURN"]
        )
        result = _interpreter.execute(code)
        assert int.from_bytes(result.return_data, "big") == (1 if a == 0 else 0)

    @given(word_values, st.integers(min_value=1, max_value=WORD))
    @settings(max_examples=40, deadline=None)
    def test_div_mod_identity(self, a, b):
        quotient = _run_binary("DIV", b, a)  # pushes b then a; top of stack is a
        remainder = _run_binary("MOD", b, a)
        assert quotient * b + remainder == a if b != 0 else True


class TestFeatureProperties:
    @given(st.lists(st.binary(min_size=1, max_size=120), min_size=2, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_histogram_row_sum_equals_instruction_count(self, blobs):
        from repro.evm.disassembler import disassemble

        extractor = OpcodeHistogramExtractor()
        features = extractor.fit_transform(blobs)
        for row, blob in zip(features, blobs):
            assert row.sum() == len(disassemble(blob))

    @given(st.lists(st.binary(min_size=1, max_size=120), min_size=2, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_histogram_transform_is_idempotent(self, blobs):
        extractor = OpcodeHistogramExtractor()
        first = extractor.fit_transform(blobs)
        second = extractor.transform(blobs)
        assert np.array_equal(first, second)


class TestMetricAndStatsProperties:
    @given(st.lists(st.integers(0, 1), min_size=3, max_size=50), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_maximises_all_metrics(self, bits, seed):
        y = np.array(bits)
        report = MetricReport.from_predictions(y, y)
        assert report.accuracy == 1.0
        if y.sum() > 0:
            assert report.f1 == 1.0 and report.recall == 1.0

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=50), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_flipping_predictions_never_raises(self, bits, seed):
        y = np.array(bits)
        rng = np.random.default_rng(seed)
        predictions = rng.integers(0, 2, size=len(y))
        assert 0.0 <= accuracy_score(y, predictions) <= 1.0
        assert 0.0 <= f1_score(y, predictions) <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_holm_preserves_order_of_evidence(self, p_values):
        adjusted = holm_bonferroni(p_values)
        order_raw = np.argsort(p_values, kind="stable")
        adjusted_sorted = np.array(adjusted)[order_raw]
        assert all(
            adjusted_sorted[i] <= adjusted_sorted[i + 1] + 1e-12
            for i in range(len(adjusted_sorted) - 1)
        )

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=20),
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_cliffs_delta_antisymmetric_and_bounded(self, first, second):
        forward = cliffs_delta(first, second).delta
        backward = cliffs_delta(second, first).delta
        assert -1.0 <= forward <= 1.0
        assert forward == pytest.approx(-backward)
