"""End-to-end integration tests of the PhishingHook facade."""

import numpy as np
import pytest

from repro import PhishingHook, Scale, TABLE2_MODEL_NAMES, build_model, render_table2


@pytest.fixture(scope="module")
def hook():
    return PhishingHook(scale=Scale.smoke())


class TestFacade:
    def test_corpus_is_cached(self, hook):
        assert hook.generate_corpus() is hook.generate_corpus()

    def test_extract_records_labels_both_classes(self, hook):
        records = hook.extract_records()
        labels = {record.label for record in records}
        assert len(labels) == 2

    def test_dataset_is_balanced(self, hook):
        dataset = hook.build_dataset()
        assert dataset.phishing_fraction == pytest.approx(0.5)

    def test_full_pipeline_evaluation_and_posthoc(self, hook):
        dataset = hook.build_dataset()
        suite = hook.evaluate(["Random Forest", "k-NN", "Logistic Regression"], dataset)
        assert len(suite) == 3
        text = render_table2(suite)
        assert "Random Forest" in text
        report = hook.post_hoc(suite)
        assert len(report.table3_rows()) == 4

    def test_temporal_split(self, hook):
        split = hook.build_temporal_split()
        assert split.n_periods >= 1
        assert len(split.train) > 0

    def test_detection_of_obvious_drainer(self, hook):
        """A freshly generated drainer-style contract should be flagged."""
        from repro.chain.contracts import ContractLabel
        from repro.chain.templates import build_family_bytecode, families_for_label

        dataset = hook.build_dataset()
        detector = build_model("Random Forest", seed=0)
        detector.fit(dataset.bytecodes, dataset.labels)

        rng = np.random.default_rng(123)
        phishing_family = [
            family
            for family in families_for_label(ContractLabel.PHISHING)
            if family.name == "approval_drainer"
        ][0]
        benign_family = [
            family
            for family in families_for_label(ContractLabel.BENIGN)
            if family.name == "erc20_token"
        ][0]
        drainers = [build_family_bytecode(phishing_family, rng) for _ in range(12)]
        tokens = [build_family_bytecode(benign_family, rng) for _ in range(12)]
        drainer_rate = detector.predict(drainers).mean()
        token_rate = detector.predict(tokens).mean()
        assert drainer_rate > token_rate

    def test_registry_names_match_paper_count(self):
        assert len(TABLE2_MODEL_NAMES) == 16
