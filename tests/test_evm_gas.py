"""Tests for the static gas profiling helpers."""

from repro.evm.assembler import assemble, push
from repro.evm.disassembler import disassemble
from repro.evm.gas import cumulative_gas, profile


class TestGasProfile:
    def test_total_matches_sum(self):
        instructions = disassemble(assemble([push(0x80, 1), push(0x40, 1), "MSTORE", "STOP"]))
        gas_profile = profile(instructions)
        assert gas_profile.total == 9
        assert gas_profile.instruction_count == 4

    def test_mean_per_instruction(self):
        instructions = disassemble(assemble([push(1), push(2), "ADD"]))
        assert profile(instructions).mean_per_instruction == 3.0

    def test_empty_profile(self):
        gas_profile = profile([])
        assert gas_profile.total == 0
        assert gas_profile.mean_per_instruction == 0.0

    def test_per_category_accounting(self):
        instructions = disassemble(assemble([push(1), push(1), "SSTORE", "STOP"]))
        gas_profile = profile(instructions)
        assert gas_profile.per_category["storage"] == 100
        assert gas_profile.per_category["push"] == 6

    def test_invalid_counts_zero(self):
        instructions = disassemble(bytes([0xFE]))
        assert profile(instructions).total == 0

    def test_cumulative_gas_monotonic(self):
        instructions = disassemble(assemble([push(1), push(2), "ADD", "MSTORE" , "STOP"]))
        series = cumulative_gas(instructions)
        assert series == sorted(series)
        assert series[-1] == profile(instructions).total
