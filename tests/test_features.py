"""Tests for the feature extractors: histograms, images, n-grams, tokenizers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evm.assembler import assemble, push
from repro.features.chunking import aggregate_chunk_logits, flatten_chunks, sliding_window_chunks
from repro.features.histogram import OpcodeHistogramExtractor, opcode_usage_distribution
from repro.features.image import FrequencyImageEncoder, R2D2ImageEncoder
from repro.features.ngram import HexNgramEncoder, PAD_ID, UNKNOWN_ID
from repro.features.tokenizer import CLS_TOKEN, EOS_TOKEN, OpcodeTokenizer


class TestHistogramExtractor:
    def test_counts_match_disassembly(self):
        code = assemble([push(0x80, 1), push(0x40, 1), "MSTORE", "MSTORE", "STOP"])
        extractor = OpcodeHistogramExtractor()
        features = extractor.fit_transform([code])
        names = extractor.feature_names()
        assert features[0, names.index("PUSH1")] == 2
        assert features[0, names.index("MSTORE")] == 2
        assert features[0, names.index("STOP")] == 1

    def test_vocabulary_learned_from_training_set_only(self):
        train_code = assemble(["ADD", "STOP"])
        test_code = assemble(["MUL", "STOP"])
        extractor = OpcodeHistogramExtractor().fit([train_code])
        features = extractor.transform([test_code])
        # MUL was unseen at fit time, so only STOP is counted.
        assert features.sum() == 1

    def test_vector_length_equals_training_vocabulary(self, bytecodes):
        extractor = OpcodeHistogramExtractor().fit(bytecodes[:40])
        features = extractor.transform(bytecodes[:10])
        assert features.shape == (10, extractor.vocabulary_.size)

    def test_normalized_histograms_sum_to_one(self, bytecodes):
        extractor = OpcodeHistogramExtractor(normalize=True)
        features = extractor.fit_transform(bytecodes[:10])
        sums = features.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OpcodeHistogramExtractor().transform([b"\x00"])

    def test_counts_are_nonnegative_integers(self, bytecodes):
        features = OpcodeHistogramExtractor().fit_transform(bytecodes[:20])
        assert np.all(features >= 0)
        assert np.allclose(features, np.round(features))

    def test_opcode_usage_distribution(self, bytecodes):
        usage = opcode_usage_distribution(bytecodes[:15], ["PUSH1", "MSTORE"])
        assert set(usage) == {"PUSH1", "MSTORE"}
        assert all(len(values) == 15 for values in usage.values())


class TestR2D2ImageEncoder:
    def test_shape_and_range(self, bytecodes):
        encoder = R2D2ImageEncoder(image_size=16)
        images = encoder.transform(bytecodes[:5])
        assert images.shape == (5, 3, 16, 16)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_truncates_long_bytecode(self):
        encoder = R2D2ImageEncoder(image_size=4)
        image = encoder.encode_one(bytes(range(256)))
        assert image.shape == (3, 4, 4)

    def test_zero_padding_for_short_bytecode(self):
        encoder = R2D2ImageEncoder(image_size=8)
        image = encoder.encode_one(b"\xff")
        assert image.reshape(-1)[0] == pytest.approx(1.0)
        assert image.sum() == pytest.approx(1.0)

    def test_deterministic(self, bytecodes):
        encoder = R2D2ImageEncoder(image_size=8)
        assert np.array_equal(encoder.encode_one(bytecodes[0]), encoder.encode_one(bytecodes[0]))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            R2D2ImageEncoder(image_size=1)


class TestFrequencyImageEncoder:
    def test_requires_fit(self, bytecodes):
        with pytest.raises(RuntimeError):
            FrequencyImageEncoder(image_size=8).encode_one(bytecodes[0])

    def test_shape_and_range(self, bytecodes):
        encoder = FrequencyImageEncoder(image_size=8)
        images = encoder.fit_transform(bytecodes[:8])
        assert images.shape == (8, 3, 8, 8)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_frequent_mnemonics_brighter(self, bytecodes):
        encoder = FrequencyImageEncoder(image_size=8)
        encoder.fit(bytecodes[:20])
        common = encoder._mnemonic_encoder.transform(["PUSH1"])[0]
        rare = encoder._mnemonic_encoder.transform(["SELFDESTRUCT"])[0]
        assert common >= rare


class TestHexNgramEncoder:
    def test_fixed_length_output(self, bytecodes):
        encoder = HexNgramEncoder(max_length=32)
        sequences = encoder.fit_transform(bytecodes[:10])
        assert sequences.shape == (10, 32)

    def test_padding_and_unknown_ids(self):
        encoder = HexNgramEncoder(chars_per_gram=2, max_length=8)
        encoder.fit([b"\x01\x02\x03"])
        encoded = encoder.encode_one(b"\xff")
        assert encoded[0] == UNKNOWN_ID
        assert encoded[-1] == PAD_ID

    def test_vocabulary_cap(self, bytecodes):
        encoder = HexNgramEncoder(max_vocabulary=16)
        encoder.fit(bytecodes[:20])
        assert len(encoder.vocabulary_) <= 16
        assert encoder.vocabulary_size <= 18

    def test_invalid_gram_size(self):
        with pytest.raises(ValueError):
            HexNgramEncoder(chars_per_gram=3)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            HexNgramEncoder().encode_one(b"\x00")

    @given(st.binary(min_size=0, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_ids_always_in_vocabulary_range(self, blob):
        encoder = HexNgramEncoder(max_length=16)
        encoder.fit([b"\x60\x80\x60\x40\x52" * 4])
        encoded = encoder.encode_one(blob)
        assert encoded.shape == (16,)
        assert encoded.max() < encoder.vocabulary_size


class TestOpcodeTokenizer:
    def test_special_tokens_present(self, bytecodes):
        tokenizer = OpcodeTokenizer(max_length=32)
        tokens = tokenizer.tokenize(bytecodes[0])
        assert tokens[0] == CLS_TOKEN
        assert tokens[-1] == EOS_TOKEN

    def test_fixed_length_ids(self, bytecodes):
        tokenizer = OpcodeTokenizer(max_length=24)
        ids = tokenizer.transform(bytecodes[:6])
        assert ids.shape == (6, 24)
        assert ids.max() < tokenizer.vocabulary_size

    def test_vocabulary_is_closed_over_mnemonics(self):
        tokenizer = OpcodeTokenizer()
        assert "MSTORE" in tokenizer.vocabulary
        assert "PUSH32" in tokenizer.vocabulary
        assert tokenizer.vocabulary_size > 144

    def test_operand_buckets_interleaved(self):
        code = assemble([push(0x80, 1), "MSTORE", "STOP"])
        tokens = OpcodeTokenizer(include_operands=True).tokenize(code)
        assert "<imm1>" in tokens
        without = OpcodeTokenizer(include_operands=False).tokenize(code)
        assert "<imm1>" not in without

    def test_padding(self):
        tokenizer = OpcodeTokenizer(max_length=50)
        ids = tokenizer.encode_one(assemble(["STOP"]))
        assert (ids == tokenizer.pad_id).sum() > 40


class TestChunking:
    def test_chunk_shapes(self):
        sequences = [np.arange(10), np.arange(3), np.arange(25)]
        chunked = sliding_window_chunks(sequences, window=8, stride=4, pad_id=0, max_chunks=4)
        assert len(chunked) == 3
        assert all(item.chunks.shape[1] == 8 for item in chunked)

    def test_short_sequence_single_chunk(self):
        chunked = sliding_window_chunks([np.arange(3)], window=8, stride=4)
        assert chunked[0].chunks.shape == (1, 8)
        assert list(chunked[0].chunks[0][:3]) == [0, 1, 2]

    def test_max_chunks_respected(self):
        chunked = sliding_window_chunks([np.arange(1000)], window=10, stride=5, max_chunks=3)
        assert chunked[0].chunks.shape[0] == 3

    def test_empty_sequence_padded(self):
        chunked = sliding_window_chunks([np.array([])], window=4, stride=2, pad_id=9)
        assert chunked[0].chunks.shape == (1, 4)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_window_chunks([np.arange(5)], window=0, stride=1)

    def test_flatten_and_aggregate_roundtrip(self):
        sequences = [np.arange(12), np.arange(20)]
        chunked = sliding_window_chunks(sequences, window=8, stride=8)
        chunks, owners = flatten_chunks(chunked)
        logits = np.column_stack([owners.astype(float), 1 - owners.astype(float)])
        aggregated = aggregate_chunk_logits(logits, owners, n_contracts=2, how="mean")
        assert aggregated.shape == (2, 2)
        assert aggregated[0, 0] == pytest.approx(0.0)
        assert aggregated[1, 0] == pytest.approx(1.0)

    def test_aggregate_max(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        owners = np.array([0, 0])
        aggregated = aggregate_chunk_logits(logits, owners, n_contracts=1, how="max")
        assert aggregated[0, 0] == pytest.approx(0.8)

    def test_aggregate_invalid_mode(self):
        with pytest.raises(ValueError):
            aggregate_chunk_logits(np.zeros((1, 2)), np.array([0]), 1, how="median")
