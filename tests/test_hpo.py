"""Tests for the hyperparameter-optimisation substrate."""

import numpy as np
import pytest

from repro.hpo.samplers import GridSampler, RandomSampler, TPESampler
from repro.hpo.space import Trial, grid_from_specs
from repro.hpo.study import create_study


class TestTrialSuggestions:
    def test_categorical_in_choices(self):
        trial = Trial(0, np.random.default_rng(0))
        value = trial.suggest_categorical("kind", ["a", "b", "c"])
        assert value in {"a", "b", "c"}
        assert trial.params["kind"] == value

    def test_int_in_range(self):
        trial = Trial(0, np.random.default_rng(0))
        value = trial.suggest_int("n", 3, 9)
        assert 3 <= value <= 9
        assert isinstance(value, int)

    def test_float_in_range(self):
        trial = Trial(0, np.random.default_rng(0))
        value = trial.suggest_float("lr", 0.1, 0.5)
        assert 0.1 <= value <= 0.5

    def test_loguniform_in_range(self):
        trial = Trial(0, np.random.default_rng(0))
        value = trial.suggest_float("reg", 1e-5, 1e-1, log=True)
        assert 1e-5 <= value <= 1e-1

    def test_assigned_values_override_sampling(self):
        trial = Trial(0, np.random.default_rng(0), assigned={"n": 7})
        assert trial.suggest_int("n", 1, 100) == 7

    def test_specs_recorded(self):
        trial = Trial(0, np.random.default_rng(0))
        trial.suggest_int("n", 1, 5)
        trial.suggest_categorical("kind", ["x"])
        assert set(trial.specs) == {"n", "kind"}


class TestGridExpansion:
    def test_grid_size_is_product_of_axes(self):
        trial = Trial(0, np.random.default_rng(0))
        trial.suggest_categorical("a", ["x", "y"])
        trial.suggest_int("b", 1, 3)
        grid = grid_from_specs(trial.specs, resolution=3)
        assert len(grid) == 2 * 3

    def test_grid_covers_categorical_choices(self):
        trial = Trial(0, np.random.default_rng(0))
        trial.suggest_categorical("a", ["x", "y", "z"])
        grid = grid_from_specs(trial.specs)
        assert {point["a"] for point in grid} == {"x", "y", "z"}


class TestStudy:
    @staticmethod
    def quadratic_objective(trial):
        x = trial.suggest_float("x", -4.0, 4.0)
        return -(x - 1.0) ** 2

    def test_random_search_improves(self):
        study = create_study(sampler=RandomSampler(), seed=0)
        study.optimize(self.quadratic_objective, n_trials=40)
        assert study.best_value > -1.0
        assert abs(study.best_params["x"] - 1.0) < 1.5

    def test_grid_search_enumerates(self):
        study = create_study(sampler=GridSampler(resolution=5), seed=0)
        study.optimize(self.quadratic_objective, n_trials=10)
        assert len(study.completed_trials) == 10

    def test_tpe_sampler_runs(self):
        study = create_study(sampler=TPESampler(n_startup_trials=3), seed=1)
        study.optimize(self.quadratic_objective, n_trials=25)
        assert study.best_value > -1.5

    def test_minimize_direction(self):
        study = create_study(direction="minimize", sampler=RandomSampler(), seed=0)
        study.optimize(lambda t: (t.suggest_float("x", -2, 2)) ** 2, n_trials=30)
        assert study.best_value < 0.5

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            create_study(direction="sideways")

    def test_failed_trials_recorded_not_fatal(self):
        def flaky(trial):
            value = trial.suggest_float("x", 0, 1)
            if value < 0.5:
                raise RuntimeError("boom")
            return value

        study = create_study(sampler=RandomSampler(), seed=0)
        study.optimize(flaky, n_trials=20)
        assert any(trial.state.startswith("failed") for trial in study.trials)
        assert study.best_value >= 0.5

    def test_best_trial_requires_completions(self):
        study = create_study(seed=0)
        with pytest.raises(RuntimeError):
            _ = study.best_trial

    def test_trials_dataframe(self):
        study = create_study(sampler=RandomSampler(), seed=0)
        study.optimize(self.quadratic_objective, n_trials=5)
        records = study.trials_dataframe()
        assert len(records) == 5
        assert {"number", "value", "state"} <= set(records[0])
