"""Tests for the persistent on-disk cache of :class:`BatchFeatureService`.

Covers the save/load round trip of all three cached views (counts,
sequences, n-gram codes), graceful rejection of corrupt and
stale-version files, statistics surviving a reload, capacity
enforcement on load, and the write-side guarantees: clear errors on
unwritable paths and clobber-free concurrent saves.
"""

import multiprocessing

import numpy as np
import pytest

from repro.features.batch import (
    CACHE_FILE_MAGIC,
    BatchFeatureService,
    CacheLoadError,
    CacheWriteError,
)


def make_codes(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=int(rng.integers(1, 200)), dtype=np.uint8).tobytes()
        for _ in range(n)
    ]


def populated_service(codes):
    service = BatchFeatureService()
    service.count_matrix(codes)
    service.sequences(codes)
    for code in codes:
        service.ngram_codes(code, 3)
    return service


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        codes = make_codes(6, seed=1)
        service = populated_service(codes)
        path = tmp_path / "cache.npz"
        service.save(path)
        restored = BatchFeatureService()
        assert restored.load(path) == len(service)
        assert len(restored) == len(service)
        # Every view is served from the restored cache: no kernel runs.
        kernel_passes = restored.kernel_passes
        for code in codes:
            assert np.array_equal(restored.count_vector(code), service.count_vector(code))
            theirs = service.sequence(code)
            ours = restored.sequence(code)
            assert np.array_equal(ours.opcodes, theirs.opcodes)
            assert np.array_equal(ours.widths, theirs.widths)
            assert np.array_equal(
                restored.ngram_codes(code, 3), service.ngram_codes(code, 3)
            )
        assert restored.kernel_passes == kernel_passes

    def test_stats_survive_reload(self, tmp_path):
        codes = make_codes(4, seed=2)
        service = populated_service(codes)
        service.count_matrix(codes)  # generate some hits on top of the misses
        path = tmp_path / "cache.npz"
        service.save(path)
        restored = BatchFeatureService()
        restored.load(path)
        assert restored.stats == service.stats
        assert restored.sequence_stats == service.sequence_stats
        assert restored.ngram_stats == service.ngram_stats
        assert restored.kernel_passes == service.kernel_passes

    def test_empty_service_round_trips(self, tmp_path):
        path = tmp_path / "empty.npz"
        BatchFeatureService().save(path)
        restored = BatchFeatureService()
        assert restored.load(path) == 0
        assert len(restored) == 0

    def test_partial_views_round_trip(self, tmp_path):
        # Entries holding only some views must restore exactly those views.
        sequence_only, ngrams_only = make_codes(2, seed=3)
        service = BatchFeatureService()
        service.sequence(sequence_only)
        service.ngram_codes(ngrams_only, 3)
        path = tmp_path / "cache.npz"
        service.save(path)
        restored = BatchFeatureService()
        restored.load(path)
        assert len(restored) == 2
        passes = restored.kernel_passes
        restored.sequence(sequence_only)
        restored.count_vector(sequence_only)  # derived from the cached sequence
        restored.ngram_codes(ngrams_only, 3)
        assert restored.kernel_passes == passes  # all served from cache
        restored.sequence(ngrams_only)
        assert restored.kernel_passes == passes + 1  # that view was absent

    def test_load_respects_capacity(self, tmp_path):
        codes = make_codes(8, seed=4)
        service = populated_service(codes)
        path = tmp_path / "cache.npz"
        service.save(path)
        small = BatchFeatureService(cache_size=3)
        assert small.load(path) == 3  # returns the *retained* count
        assert len(small) == 3
        assert small.stats.evictions == service.stats.evictions + 5
        # The retained entries are the most recently used ones.
        passes = small.kernel_passes
        small.count_vector(codes[-1])
        assert small.kernel_passes == passes

    def test_load_grow_retains_every_entry(self, tmp_path):
        codes = make_codes(8, seed=4)
        service = populated_service(codes)
        path = tmp_path / "cache.npz"
        service.save(path)
        small = BatchFeatureService(cache_size=3)
        assert small.load(path, grow=True) == 8  # capacity grew to fit
        assert len(small) == 8
        assert small.cache_size == 8
        assert small.stats.evictions == service.stats.evictions
        passes = small.kernel_passes
        for code in codes:
            small.count_vector(code)
        assert small.kernel_passes == passes  # nothing was dropped

    def test_load_grow_keeps_larger_capacity(self, tmp_path):
        path = tmp_path / "cache.npz"
        populated_service(make_codes(2, seed=10)).save(path)
        roomy = BatchFeatureService(cache_size=64)
        roomy.load(path, grow=True)
        assert roomy.cache_size == 64  # grow never shrinks

    def test_load_into_disabled_cache_raises(self, tmp_path):
        # A cache_size=0 service would silently drop every loaded entry
        # while reporting success; that must be an explicit error.
        path = tmp_path / "cache.npz"
        populated_service(make_codes(2, seed=10)).save(path)
        disabled = BatchFeatureService(cache_size=0)
        with pytest.raises(ValueError):
            disabled.load(path)
        assert disabled.stats.evictions == 0

    def test_save_creates_parent_directories(self, tmp_path):
        service = populated_service(make_codes(2, seed=5))
        path = tmp_path / "nested" / "dir" / "cache.npz"
        service.save(path)
        assert path.exists()
        assert BatchFeatureService().load(path) == 2

    def test_save_to_unwritable_parent_raises_clear_error(self, tmp_path):
        # A parent path occupied by a regular file cannot become a directory;
        # that must surface as a domain error naming the target, not a raw
        # FileNotFoundError/FileExistsError out of the temp-file machinery.
        blocker = tmp_path / "blocker"
        blocker.write_bytes(b"i am a file, not a directory")
        service = populated_service(make_codes(2, seed=20))
        target = blocker / "cache.npz"
        with pytest.raises(CacheWriteError) as excinfo:
            service.save(target)
        assert str(target) in str(excinfo.value)
        # The failed save never corrupted the live cache.
        assert len(service) == 2


def _concurrent_writer(path, seed, started, release):
    """Child-process body: build a small store and save it repeatedly."""
    service = populated_service(make_codes(4, seed=seed))
    started.wait()
    release.wait()
    for _ in range(5):
        service.save(path)


class TestConcurrentWriters:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="needs fork start method",
    )
    def test_two_process_writers_cannot_clobber_each_other(self, tmp_path):
        # Both children hammer the same final path simultaneously.  Each
        # save stages under a unique randomized temp name before its atomic
        # rename, so whatever interleaving happens, the final file is one
        # writer's complete, loadable store — never a truncated mix.
        context = multiprocessing.get_context("fork")
        path = tmp_path / "contested.npz"
        barrier = context.Barrier(2)
        release = context.Event()
        workers = [
            context.Process(
                target=_concurrent_writer, args=(path, seed, barrier, release)
            )
            for seed in (31, 32)
        ]
        for worker in workers:
            worker.start()
        release.set()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        restored = BatchFeatureService()
        assert restored.load(path) == 4
        # No orphaned staging files were left behind next to the target.
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []


class TestRejection:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CacheLoadError):
            BatchFeatureService().load(tmp_path / "nope.npz")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CacheLoadError):
            BatchFeatureService().load(path)

    def test_truncated_file_rejected(self, tmp_path):
        codes = make_codes(4, seed=6)
        path = tmp_path / "cache.npz"
        populated_service(codes).save(path)
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CacheLoadError):
            BatchFeatureService().load(clipped)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(handle, magic=np.array(["some-other-tool"]))
        with pytest.raises(CacheLoadError):
            BatchFeatureService().load(path)

    def test_stale_version_rejected(self, tmp_path):
        path = tmp_path / "stale.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                magic=np.array([CACHE_FILE_MAGIC]),
                version=np.array([999], dtype=np.int64),
            )
        with pytest.raises(CacheLoadError) as excinfo:
            BatchFeatureService().load(path)
        assert "stale" in str(excinfo.value)

    def test_negative_row_indices_rejected(self, tmp_path):
        # A tampered file with a negative row index must not silently attach
        # a view to the wrong bytecode entry via Python negative indexing.
        codes = make_codes(3, seed=8)
        path = tmp_path / "cache.npz"
        populated_service(codes).save(path)
        for field in ("count_rows", "seq_rows", "ngram_rows"):
            with np.load(str(path), allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
            rows = arrays[field].copy()
            rows[0] = -1
            arrays[field] = rows
            tampered = tmp_path / f"tampered-{field}.npz"
            with open(tampered, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            with pytest.raises(CacheLoadError):
                BatchFeatureService().load(tampered)

    def test_out_of_range_sequence_values_rejected(self, tmp_path):
        codes = make_codes(3, seed=9)
        path = tmp_path / "cache.npz"
        populated_service(codes).save(path)
        # 0x0C is an undefined byte value: a folded sequence can never carry
        # it, so a file that does is tampered or corrupt.
        for field, bad_value in (("seq_opcodes", 0x0C), ("seq_widths", 64)):
            with np.load(str(path), allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
            values = arrays[field].copy()
            values[0] = bad_value
            arrays[field] = values
            tampered = tmp_path / f"tampered-{field}.npz"
            with open(tampered, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            with pytest.raises(CacheLoadError):
                BatchFeatureService().load(tampered)

    def test_failed_load_leaves_service_usable(self, tmp_path):
        codes = make_codes(3, seed=7)
        service = populated_service(codes)
        entries = len(service)
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"\x00" * 32)
        with pytest.raises(CacheLoadError):
            service.load(bad)
        # The rejected load never touched the live cache.
        assert len(service) == entries
        passes = service.kernel_passes
        service.count_matrix(codes)
        assert service.kernel_passes == passes
