"""Tests for the observability plane (``repro.obs``) and its gateway surface.

Four layers, mirroring the plane's own structure:

* **Registry units** — get-or-create families, signature conflicts, label
  validation, counter monotonicity, histogram bucketing.
* **Exposition** — deterministic Prometheus text rendering: sorted
  families and samples, label-value escaping, collector merging, and the
  frozen-clock determinism contract (two scrapes byte-identical except the
  scrape counter).
* **Tracing** — contextvar propagation, the no-op inactive path, fan-out
  across a shared micro-batch flush, and the slow-request ring buffer.
* **Gateway end-to-end** — a golden HTTP ``GET /metrics`` scrape covering
  every counter ``/stats`` can reach, ``"trace": true`` span breakdowns
  through the real micro-batcher thread handoff, and ``GET /debug/slow``.
"""

from __future__ import annotations

import http.client
import json
import re
import threading

import pytest

from repro.analysis import StaticAnalyzer
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor.pipeline import MonitorStats
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    SlowRequestLog,
    Trace,
    get_default_registry,
)
from repro.obs import trace as obs_trace
from repro.obs.metrics import FamilySnapshot, Sample, format_value, sample
from repro.serving import (
    ExplanationService,
    Gateway,
    GatewayConfig,
    ScoringService,
    ServingConfig,
)

# ---------------------------------------------------------------------------
# registry units
# ---------------------------------------------------------------------------


class TestRegistryFamilies:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="never") == 0.0

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("repro_test_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_test_inflight", "help")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value() == 3.0

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "help", ("kind",))
        second = registry.counter("repro_test_total", "other help", ("kind",))
        assert first is second

    def test_signature_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "help", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("repro_test_total", "help", ("other",))
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total", "help", ("kind",))

    def test_histogram_bucket_signature_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_test_seconds", "help", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_test_seconds", "help", buckets=(1.0, 5.0))

    @pytest.mark.parametrize("name", ["1starts_with_digit", "has-dash", "has space"])
    def test_invalid_metric_names_rejected(self, name):
        with pytest.raises(ValueError):
            MetricsRegistry().counter(name, "help")

    @pytest.mark.parametrize("label", ["__reserved", "has-dash", "1digit"])
    def test_invalid_label_names_rejected(self, label):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("repro_test_total", "help", (label,))

    def test_duplicate_label_names_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("repro_test_total", "help", ("a", "a"))

    def test_wrong_label_set_rejected_at_use(self):
        counter = MetricsRegistry().counter("repro_test_total", "help", ("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing label
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="b")

    def test_histogram_boundary_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("repro_a_seconds", "help", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("repro_b_seconds", "help", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram(
                "repro_c_seconds", "help", buckets=(1.0, float("inf"))
            )

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        hist = registry.histogram("repro_test_seconds", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 3.0):  # boundary 0.1 is inclusive
            hist.observe(value)
        text = registry.render()
        assert 'repro_test_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_test_seconds_bucket{le="1"} 3' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_test_seconds_sum 3.65" in text
        assert "repro_test_seconds_count 4" in text

    def test_format_value_collapses_integral_floats(self):
        assert format_value(3.0) == "3"
        assert format_value(3.5) == "3.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("nan")) == "NaN"

    def test_null_registry_is_inert_but_renders(self):
        registry = NullRegistry()
        counter = registry.counter("repro_test_total", "help", ("kind",))
        counter.inc(kind="a")  # no label checking, no accounting
        registry.register_collector("x", lambda: [_ for _ in ()])
        text = registry.render()
        assert "repro_test_total" not in text
        assert "repro_obs_scrapes_total" in text

    def test_default_registry_is_process_wide(self):
        assert get_default_registry() is get_default_registry()


# ---------------------------------------------------------------------------
# exposition
# ---------------------------------------------------------------------------

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})? "
    r"(-?[0-9.e+-]+|[+-]Inf|NaN)$"
)


def assert_parseable_exposition(text: str) -> dict:
    """Assert Prometheus text validity; return {family: [sample lines]}."""
    families: dict = {}
    typed = set()
    current_type = None
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split(" ")
            assert kind in {"counter", "gauge", "histogram"}
            assert name not in typed, f"duplicate # TYPE for {name}"
            typed.add(name)
            current_type = name
        elif line.startswith("#"):
            continue
        else:
            assert _SAMPLE_LINE.match(line), f"unparseable sample line: {line!r}"
            bare = line.split("{")[0].split(" ")[0]
            family = re.sub(r"_(bucket|sum|count)$", "", bare)
            assert current_type in (bare, family), (
                f"sample {line!r} not under its # TYPE header"
            )
            families.setdefault(family if bare != current_type else bare, []).append(
                line
            )
    return families


class TestExposition:
    def test_families_sorted_and_samples_sorted(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        zz = registry.counter("repro_zz_total", "help", ("kind",))
        aa = registry.counter("repro_aa_total", "help", ("kind",))
        zz.inc(kind="b")
        zz.inc(kind="a")
        aa.inc(kind="x")
        text = registry.render()
        assert text.index("repro_aa_total") < text.index("repro_zz_total")
        assert text.index('repro_zz_total{kind="a"}') < text.index(
            'repro_zz_total{kind="b"}'
        )

    def test_label_value_escaping(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        counter = registry.counter("repro_test_total", "help", ("path",))
        counter.inc(path='with"quote')
        counter.inc(path="with\\slash")
        counter.inc(path="with\nnewline")
        text = registry.render()
        assert r'path="with\"quote"' in text
        assert r'path="with\\slash"' in text
        assert r'path="with\nnewline"' in text
        assert_parseable_exposition(text)

    def test_help_newline_escaped(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.counter("repro_test_total", "line one\nline two").inc()
        text = registry.render()
        assert r"# HELP repro_test_total line one\nline two" in text

    def test_collectors_with_same_family_merge(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        family = "repro_test_total"
        registry.register_collector(
            "a",
            lambda: [FamilySnapshot(family, "counter", "h", (sample(1, k="a"),))],
        )
        registry.register_collector(
            "b",
            lambda: [FamilySnapshot(family, "counter", "h", (sample(2, k="b"),))],
        )
        text = registry.render()
        assert 'repro_test_total{k="a"} 1' in text
        assert 'repro_test_total{k="b"} 2' in text
        assert text.count("# TYPE repro_test_total counter") == 1

    def test_conflicting_collector_kinds_raise(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.register_collector(
            "a", lambda: [FamilySnapshot("repro_x", "counter", "h", (sample(1),))]
        )
        registry.register_collector(
            "b", lambda: [FamilySnapshot("repro_x", "gauge", "h", (sample(1),))]
        )
        with pytest.raises(ValueError):
            registry.render()

    def test_collector_replaced_by_name(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.register_collector(
            "sub", lambda: [FamilySnapshot("repro_old", "counter", "h", (sample(1),))]
        )
        registry.register_collector(
            "sub", lambda: [FamilySnapshot("repro_new", "counter", "h", (sample(1),))]
        )
        text = registry.render()
        assert "repro_new" in text
        assert "repro_old" not in text

    def test_unregister_collector(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.register_collector(
            "sub", lambda: [FamilySnapshot("repro_x", "counter", "h", (sample(1),))]
        )
        registry.unregister_collector("sub")
        assert "repro_x" not in registry.render()

    def test_frozen_clock_scrapes_identical_modulo_scrape_counter(self):
        registry = MetricsRegistry(clock=lambda: 1234.5)
        counter = registry.counter("repro_test_total", "help", ("kind",))
        counter.inc(3, kind="a")
        hist = registry.histogram("repro_test_seconds", "help", buckets=(0.1, 1.0))
        hist.observe(0.05)
        first = registry.render().splitlines()
        second = registry.render().splitlines()
        assert len(first) == len(second)
        differing = [
            (a, b) for a, b in zip(first, second) if a != b
        ]
        assert differing == [
            ("repro_obs_scrapes_total 1", "repro_obs_scrapes_total 2")
        ]

    def test_uptime_reads_injected_clock(self):
        now = [100.0]
        registry = MetricsRegistry(clock=lambda: now[0])
        now[0] = 107.5
        assert "repro_obs_uptime_seconds 7.5" in registry.render()

    def test_thread_safety_under_concurrent_writes(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTrace:
    def test_record_stores_relative_milliseconds(self):
        now = [10.0]
        trace = obs_trace.new_trace(trace_id="abc", clock=lambda: now[0])
        trace.record("stage", 10.5, 10.75)
        (span,) = trace.spans()
        assert span.name == "stage"
        assert span.start_ms == pytest.approx(500.0)
        assert span.duration_ms == pytest.approx(250.0)
        payload = trace.to_dict()
        assert payload["trace_id"] == "abc"
        assert payload["spans"][0]["duration_ms"] == 250.0

    def test_span_is_noop_when_inactive(self):
        assert obs_trace.current() is None
        with obs_trace.span("anything"):
            pass  # must not raise, must not record anywhere
        assert obs_trace.current_trace_id() is None

    def test_activate_installs_and_restores(self):
        trace = obs_trace.new_trace()
        with obs_trace.activate(trace):
            assert obs_trace.current() is trace
            assert obs_trace.current_trace_id() == trace.trace_id
            with obs_trace.span("inner"):
                pass
        assert obs_trace.current() is None
        assert [span.name for span in trace.spans()] == ["inner"]

    def test_activate_none_deactivates(self):
        outer = obs_trace.new_trace()
        with obs_trace.activate(outer):
            with obs_trace.activate(None):
                assert obs_trace.current() is None
                obs_trace.record_span("lost", 0.0, 1.0)
            assert obs_trace.current() is outer
        assert outer.spans() == ()

    def test_fan_out_mirrors_spans_into_every_trace(self):
        traces = [obs_trace.new_trace() for _ in range(3)]
        recorder = obs_trace.fan_out(traces)
        with obs_trace.activate(recorder):
            obs_trace.record_span("model", 1.0, 2.0)
        for trace in traces:
            assert [span.name for span in trace.spans()] == ["model"]

    def test_fan_out_of_nothing_is_none(self):
        assert obs_trace.fan_out([]) is None
        assert obs_trace.fan_out([None, None]) is None

    def test_fan_out_trace_id_is_first_trace(self):
        traces = [obs_trace.new_trace(trace_id="first"), obs_trace.new_trace()]
        with obs_trace.activate(obs_trace.fan_out(traces)):
            assert obs_trace.current_trace_id() == "first"

    def test_trace_does_not_leak_to_other_threads(self):
        trace = obs_trace.new_trace()
        seen = []
        with obs_trace.activate(trace):
            worker = threading.Thread(target=lambda: seen.append(obs_trace.current()))
            worker.start()
            worker.join()
        assert seen == [None]


class TestSlowRequestLog:
    def _trace(self, elapsed_ms: float) -> Trace:
        now = [0.0]
        trace = obs_trace.new_trace(clock=lambda: now[0])
        now[0] = elapsed_ms / 1000.0
        return trace

    def test_fast_requests_not_recorded(self):
        log = SlowRequestLog(capacity=4, threshold_ms=100.0)
        assert log.record(self._trace(5.0), "/score/bytecode", 200) is False
        snapshot = log.snapshot()
        assert snapshot["seen"] == 1
        assert snapshot["recorded"] == 0
        assert snapshot["entries"] == []

    def test_slow_requests_recorded_with_spans(self):
        log = SlowRequestLog(capacity=4, threshold_ms=100.0)
        trace = self._trace(250.0)
        trace.record("gateway", 0.0, 0.25)
        assert log.record(trace, "/score/batch", 200) is True
        (entry,) = log.snapshot()["entries"]
        assert entry["trace_id"] == trace.trace_id
        assert entry["route"] == "/score/batch"
        assert entry["status"] == 200
        assert entry["latency_ms"] == pytest.approx(250.0)
        assert entry["spans"][0]["name"] == "gateway"

    def test_capacity_keeps_newest(self):
        log = SlowRequestLog(capacity=2, threshold_ms=0.0)
        for index in range(5):
            log.record(self._trace(1.0), f"/route/{index}", 200)
        snapshot = log.snapshot()
        assert snapshot["recorded"] == 5
        assert [entry["route"] for entry in snapshot["entries"]] == [
            "/route/3",
            "/route/4",
        ]

    def test_explicit_latency_override(self):
        log = SlowRequestLog(capacity=2, threshold_ms=100.0)
        assert log.record(self._trace(1.0), "/x", 200, latency_ms=500.0) is True

    @pytest.mark.parametrize("kwargs", [{"capacity": 0}, {"threshold_ms": -1.0}])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SlowRequestLog(**kwargs)


# ---------------------------------------------------------------------------
# gateway end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def obs_feature_service():
    return BatchFeatureService()


@pytest.fixture(scope="module")
def obs_detector(dataset, obs_feature_service):
    detector = make_random_forest_hsc(seed=7)
    detector.feature_service = obs_feature_service
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


@pytest.fixture()
def obs_service(obs_detector):
    config = ServingConfig(max_batch=32, max_wait_ms=1.0)
    with ScoringService(
        obs_detector, config=config, registry=MetricsRegistry()
    ) as service:
        yield service


@pytest.fixture()
def obs_explainer(obs_detector, dataset):
    return ExplanationService(
        obs_detector,
        background=dataset.bytecodes[:12],
        top_k=4,
        n_permutations=2,
        max_background=4,
        seed=11,
    )


class StubPipeline:
    """A /stats- and collector-compatible monitor pipeline stand-in."""

    def __init__(self, service):
        self._service = service

    def stats(self):
        return MonitorStats(
            blocks_scanned=7,
            contracts_scanned=21,
            alerts_emitted=3,
            alert_rate=3 / 21,
            windows=2,
            next_block=8,
            reorgs_detected=0,
            block_latency_ms_p50=1.0,
            block_latency_ms_p95=2.0,
            block_latency_ms_p99=2.5,
            drift_windows=1,
            drifted=False,
            service=self._service.stats(),
            chain_id=1337,
            impersonation_alerts=2,
        )


@pytest.fixture()
def start_gateway(event_loop_thread):
    gateways = []

    def _start(service, config=None, **kwargs) -> Gateway:
        gateway = Gateway(service, config=config or GatewayConfig(), **kwargs)
        event_loop_thread.run(gateway.start())
        gateways.append(gateway)
        return gateway

    yield _start
    for gateway in gateways:
        event_loop_thread.run(gateway.stop())


def request(port, method, path, body=None, timeout=15.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body) if isinstance(body, (dict, list)) else body
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
        headers = {name.lower(): value for name, value in response.getheaders()}
        return response.status, headers, json.loads(data) if data else None
    finally:
        conn.close()


def text_request(port, path, timeout=15.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        headers = {name.lower(): value for name, value in response.getheaders()}
        return response.status, headers, response.read().decode("utf-8")
    finally:
        conn.close()


class TestMetricsEndpoint:
    def test_scrape_is_parseable_prometheus_text(
        self, obs_service, start_gateway, dataset
    ):
        gateway = start_gateway(obs_service)
        code = dataset.bytecodes[0].hex()
        request(gateway.port, "POST", "/score/bytecode", body={"bytecode": code})
        status, headers, text = text_request(gateway.port, "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        families = assert_parseable_exposition(text)
        # Samples within each family render in sorted label order (histogram
        # lines follow the bucket/sum/count exposition order instead).
        for family, lines in families.items():
            plain = [
                line
                for line in lines
                if line.startswith(f"{family}{{") or line.startswith(f"{family} ")
            ]
            assert plain == sorted(plain)
        assert "repro_obs_scrapes_total" in families

    def test_scrape_covers_every_stats_counter(
        self, obs_service, start_gateway, obs_explainer
    ):
        analyzer = StaticAnalyzer()
        analyzer.analyze(bytes([0x60, 0x01, 0x60, 0x02, 0x01, 0x00]))
        gateway = start_gateway(
            obs_service,
            explainer=obs_explainer,
            analyzer=analyzer,
            pipeline=StubPipeline(obs_service),
        )
        _, _, stats = request(gateway.port, "GET", "/stats")
        assert set(stats) == {"gateway", "service", "monitor", "explain", "analysis"}
        _, _, text = text_request(gateway.port, "/metrics")
        needles = [
            # gateway section
            "repro_gateway_connections_total",
            "repro_gateway_requests_total",
            'repro_gateway_responses_total{code_class="2xx"}',
            'repro_gateway_responses_total{code_class="4xx"}',
            'repro_gateway_responses_total{code_class="5xx"}',
            "repro_gateway_rate_limited_total",
            "repro_gateway_shed_total",
            "repro_gateway_timeouts_total",
            "repro_gateway_inflight_requests",
            "repro_gateway_peak_inflight_requests",
            "repro_gateway_rejected_connections_total",
            "repro_gateway_draining",
            # service section
            "repro_serving_requests_total",
            'repro_serving_verdict_cache_total{outcome="hit"}',
            'repro_serving_verdict_cache_total{outcome="miss"}',
            "repro_serving_verdict_hit_ratio",
            "repro_serving_verdict_cache_entries",
            "repro_serving_batches_total",
            "repro_serving_mean_batch_size",
            "repro_serving_max_batch_size",
            "repro_serving_feature_hit_ratio",
            "repro_serving_feature_lookups_total",
            "repro_serving_kernel_passes_total",
            'repro_serving_latency_ms{quantile="p50"}',
            'repro_serving_latency_ms{quantile="p95"}',
            'repro_serving_latency_ms{quantile="p99"}',
            # feature cache (per view)
            'repro_features_cache_hits_total{view="counts"}',
            'repro_features_cache_misses_total{view="sequences"}',
            'repro_features_cache_evictions_total{view="ngrams"}',
            'repro_features_cache_spills_total{view="bytes"}',
            'repro_features_cache_spill_hits_total{view="images"}',
            'repro_features_cache_hit_ratio{view="analysis"}',
            "repro_features_kernel_passes_total",
            # monitor section (chain-labelled through the stub pipeline)
            'repro_monitor_blocks_scanned_total{chain_id="1337"}',
            'repro_monitor_contracts_scanned_total{chain_id="1337"}',
            'repro_monitor_alerts_total{chain_id="1337"}',
            'repro_monitor_impersonation_alerts_total{chain_id="1337"}',
            'repro_monitor_alert_ratio{chain_id="1337"}',
            'repro_monitor_windows_total{chain_id="1337"}',
            'repro_monitor_next_block{chain_id="1337"}',
            'repro_monitor_reorgs_total{chain_id="1337"}',
            'repro_monitor_block_latency_ms{chain_id="1337",quantile="p99"}',
            'repro_monitor_drift_windows_total{chain_id="1337"}',
            'repro_monitor_drifted{chain_id="1337"}',
            # explain section
            "repro_explain_explainers_built_total",
            "repro_explain_explainer_entries",
            "repro_explain_explanations_total",
            "repro_explain_memo_hits_total",
            "repro_explain_memo_entries",
            # analysis section
            "repro_analysis_analyses_total",
            'repro_analysis_cache_total{outcome="hit"}',
            'repro_analysis_cache_total{outcome="miss"}',
            "repro_analysis_proxy_resolutions_total",
            "repro_analysis_findings_total",
            "repro_analysis_high_severity_total",
        ]
        missing = [needle for needle in needles if needle not in text]
        assert not missing, f"/metrics misses: {missing}"

    def test_stats_shape_gains_no_obs_keys(self, obs_service, start_gateway):
        gateway = start_gateway(obs_service)
        _, _, stats = request(gateway.port, "GET", "/stats")
        assert set(stats) == {"gateway", "service"}
        assert "trace" not in stats["gateway"]
        assert "registry" not in stats["service"]

    def test_direct_instrumentation_reaches_scrape(
        self, obs_service, start_gateway, dataset
    ):
        gateway = start_gateway(obs_service)
        code = dataset.bytecodes[1].hex()
        request(gateway.port, "POST", "/score/bytecode", body={"bytecode": code})
        _, _, text = text_request(gateway.port, "/metrics")
        assert re.search(r'repro_serving_flushes_total\{reason="\w+"\} [1-9]', text)
        assert 'repro_gateway_request_latency_seconds_bucket{route="/score/bytecode"' in text
        assert "repro_serving_batch_size_bucket" in text
        assert "repro_serving_model_pass_seconds_count" in text

    def test_unknown_routes_collapse_to_other_label(
        self, obs_service, start_gateway
    ):
        gateway = start_gateway(obs_service)
        request(gateway.port, "GET", "/definitely/not/a/route")
        _, _, text = text_request(gateway.port, "/metrics")
        assert 'repro_gateway_request_latency_seconds_bucket{route="other"' in text
        assert "/definitely/not/a/route" not in text


class TestTraceEndpoint:
    def test_trace_true_returns_span_breakdown(
        self, obs_service, start_gateway, dataset
    ):
        gateway = start_gateway(obs_service)
        code = dataset.bytecodes[2].hex()
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": code, "trace": True},
        )
        assert status == 200
        assert re.fullmatch(r"[0-9a-f]{16}", body["trace"]["trace_id"])
        names = {span["name"] for span in body["trace"]["spans"]}
        assert {"gateway", "batch", "features", "model"} <= names
        for span in body["trace"]["spans"]:
            assert span["duration_ms"] >= 0.0

    def test_trace_absent_by_default(self, obs_service, start_gateway, dataset):
        gateway = start_gateway(obs_service)
        code = dataset.bytecodes[3].hex()
        _, _, body = request(
            gateway.port, "POST", "/score/bytecode", body={"bytecode": code}
        )
        assert "trace" not in body

    def test_trace_flag_must_be_boolean(self, obs_service, start_gateway, dataset):
        gateway = start_gateway(obs_service)
        code = dataset.bytecodes[3].hex()
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": code, "trace": "yes"},
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_explain_and_analysis_stages_traced(
        self, obs_service, start_gateway, obs_explainer, dataset
    ):
        gateway = start_gateway(
            obs_service, explainer=obs_explainer, analyzer=StaticAnalyzer()
        )
        code = dataset.bytecodes[4].hex()
        _, _, body = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": code, "trace": True, "explain": True, "analyze": True},
        )
        names = {span["name"] for span in body["trace"]["spans"]}
        assert {"explain", "analysis"} <= names

    def test_batch_route_traced(self, obs_service, start_gateway, dataset):
        gateway = start_gateway(obs_service)
        codes = [code.hex() for code in dataset.bytecodes[5:8]]
        status, _, body = request(
            gateway.port,
            "POST",
            "/score/batch",
            body={"bytecodes": codes, "trace": True},
        )
        assert status == 200
        assert body["count"] == 3
        names = {span["name"] for span in body["trace"]["spans"]}
        assert {"gateway", "model"} <= names

    def test_cached_verdicts_still_trace_gateway_span(
        self, obs_service, start_gateway, dataset
    ):
        gateway = start_gateway(obs_service)
        code = dataset.bytecodes[6].hex()
        request(gateway.port, "POST", "/score/bytecode", body={"bytecode": code})
        _, _, body = request(
            gateway.port,
            "POST",
            "/score/bytecode",
            body={"bytecode": code, "trace": True},
        )
        assert body["cached"] is True
        names = {span["name"] for span in body["trace"]["spans"]}
        assert "gateway" in names
        # A verdict-cache hit never reaches the model.
        assert "model" not in names


class TestDebugSlowEndpoint:
    def test_zero_threshold_records_every_scoring_request(
        self, obs_service, start_gateway, dataset
    ):
        config = GatewayConfig(slow_request_ms=0.0, slow_log_size=8)
        gateway = start_gateway(obs_service, config=config)
        code = dataset.bytecodes[7].hex()
        request(gateway.port, "POST", "/score/bytecode", body={"bytecode": code})
        status, _, body = request(gateway.port, "GET", "/debug/slow")
        assert status == 200
        assert body["threshold_ms"] == 0.0
        assert body["capacity"] == 8
        assert body["recorded"] >= 1
        entry = body["entries"][-1]
        assert set(entry) == {"trace_id", "route", "status", "latency_ms", "spans"}
        assert entry["route"] == "/score/bytecode"
        assert entry["status"] == 200
        assert {span["name"] for span in entry["spans"]} >= {"gateway"}

    def test_high_threshold_records_nothing(
        self, obs_service, start_gateway, dataset
    ):
        config = GatewayConfig(slow_request_ms=60_000.0)
        gateway = start_gateway(obs_service, config=config)
        code = dataset.bytecodes[8].hex()
        request(gateway.port, "POST", "/score/bytecode", body={"bytecode": code})
        _, _, body = request(gateway.port, "GET", "/debug/slow")
        assert body["seen"] >= 1
        assert body["entries"] == []

    @pytest.mark.parametrize(
        "kwargs", [{"slow_request_ms": -1.0}, {"slow_log_size": 0}]
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GatewayConfig(**kwargs)
