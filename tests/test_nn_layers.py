"""Tests for layers, attention, GRU, transformer blocks and optimizers."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAveragePool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    pad2d,
)
from repro.nn.losses import binary_cross_entropy_with_logits, cross_entropy, log_softmax, mse_loss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.recurrent import GRU
from repro.nn.tensor import Tensor
from repro.nn.trainer import Trainer, TrainerConfig
from repro.nn.transformer import PositionalEmbedding, TransformerBlock, TransformerEncoder


class TestLinearAndEmbedding:
    def test_linear_shapes(self):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self):
        table = Embedding(10, 6, seed=0)
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_embedding_out_of_range(self):
        table = Embedding(5, 2)
        with pytest.raises(ValueError):
            table(np.array([7]))

    def test_embedding_gradient_flows_to_rows(self):
        table = Embedding(5, 3, seed=0)
        out = table(np.array([1, 1, 2]))
        out.sum().backward()
        grad = table.weight.grad
        assert np.allclose(grad[1], 2.0)
        assert np.allclose(grad[2], 1.0)
        assert np.allclose(grad[0], 0.0)


class TestNormalisationAndDropout:
    def test_layernorm_output_statistics(self):
        layer = LayerNorm(16)
        out = layer(Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 16))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.eval()
        x = np.random.default_rng(0).normal(size=(8, 8))
        assert np.array_equal(layer(Tensor(x)).data, x)

    def test_dropout_train_scales_expectation(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((2000,))
        out = layer(Tensor(x)).data
        assert abs(out.mean() - 1.0) < 0.1
        assert (out == 0).sum() > 0

    def test_invalid_dropout_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConvAndPooling:
    def test_conv_output_shape(self):
        conv = Conv2d(3, 8, kernel_size=3, padding=1, seed=0)
        out = conv(Tensor(np.ones((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_conv_stride(self):
        conv = Conv2d(3, 4, kernel_size=4, stride=4, seed=0)
        out = conv(Tensor(np.ones((1, 3, 16, 16))))
        assert out.shape == (1, 4, 4, 4)

    def test_conv_gradcheck_small(self):
        rng = np.random.default_rng(0)
        x_data = rng.normal(size=(1, 2, 4, 4))
        conv = Conv2d(2, 3, kernel_size=3, padding=1, seed=1)
        x = Tensor(x_data, requires_grad=True)
        conv(x).sum().backward()
        # numerical check on a few entries of the input gradient
        eps = 1e-5
        for index in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 0, 3, 1)]:
            plus = x_data.copy()
            plus[index] += eps
            minus = x_data.copy()
            minus[index] -= eps
            numeric = (conv(Tensor(plus)).sum().item() - conv(Tensor(minus)).sum().item()) / (2 * eps)
            assert abs(numeric - x.grad[index]) < 1e-4

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = pad2d(x, 1)
        assert padded.shape == (1, 1, 4, 4)
        padded.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_avg_and_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        avg = AvgPool2d(2)(Tensor(x))
        mx = MaxPool2d(2)(Tensor(x))
        assert avg.shape == (1, 1, 2, 2)
        assert mx.data[0, 0, 0, 0] == 5.0
        assert avg.data[0, 0, 0, 0] == pytest.approx(2.5)

    def test_pool_requires_divisible_size(self):
        with pytest.raises(ValueError):
            AvgPool2d(3)(Tensor(np.ones((1, 1, 4, 4))))

    def test_global_average_pool(self):
        out = GlobalAveragePool2d()(Tensor(np.ones((2, 3, 4, 4)) * 2.0))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, 2.0)

    def test_flatten(self):
        assert Flatten()(Tensor(np.ones((2, 3, 4)))).shape == (2, 12)


class TestAttentionAndTransformer:
    def test_attention_shape(self):
        attention = MultiHeadAttention(d_model=16, n_heads=4, seed=0)
        out = attention(Tensor(np.random.default_rng(0).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_attention_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(d_model=10, n_heads=3)

    def test_causal_mask_blocks_future(self):
        attention = MultiHeadAttention(d_model=8, n_heads=2, causal=True, seed=0)
        rng = np.random.default_rng(0)
        base = rng.normal(size=(1, 6, 8))
        changed = base.copy()
        changed[0, 5, :] += 10.0  # perturb only the last position
        out_base = attention(Tensor(base)).data
        out_changed = attention(Tensor(changed)).data
        # Earlier positions must be unaffected by a change to the future.
        assert np.allclose(out_base[0, :5], out_changed[0, :5], atol=1e-9)
        assert not np.allclose(out_base[0, 5], out_changed[0, 5])

    def test_transformer_block_shape(self):
        block = TransformerBlock(d_model=16, n_heads=4, d_hidden=32, seed=0)
        out = block(Tensor(np.random.default_rng(0).normal(size=(2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_encoder_stack(self):
        encoder = TransformerEncoder(n_layers=3, d_model=16, n_heads=2, d_hidden=32, seed=0)
        out = encoder(Tensor(np.zeros((1, 4, 16))))
        assert out.shape == (1, 4, 16)
        assert len(encoder.blocks) == 3

    def test_positional_embedding_limit(self):
        positional = PositionalEmbedding(max_length=4, d_model=8)
        with pytest.raises(ValueError):
            positional(Tensor(np.zeros((1, 5, 8))))


class TestGRU:
    def test_output_shapes(self):
        gru = GRU(input_size=6, hidden_size=4, seed=0)
        outputs, final = gru(Tensor(np.random.default_rng(0).normal(size=(3, 5, 6))))
        assert outputs.shape == (3, 5, 4)
        assert final.shape == (3, 4)

    def test_final_state_equals_last_output(self):
        gru = GRU(input_size=3, hidden_size=2, seed=1)
        outputs, final = gru(Tensor(np.random.default_rng(1).normal(size=(2, 4, 3))))
        assert np.allclose(outputs.data[:, -1, :], final.data)

    def test_gradients_flow(self):
        gru = GRU(input_size=3, hidden_size=2, seed=1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 3)), requires_grad=True)
        outputs, _ = gru(x)
        outputs.sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in gru.parameters())


class TestModuleSystem:
    def test_parameter_discovery_recursive(self):
        model = Sequential(Linear(3, 4, seed=0), ReLU(), Linear(4, 2, seed=1))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4
        assert model.n_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_state_dict_roundtrip(self):
        model = Linear(3, 2, seed=0)
        state = model.state_dict()
        other = Linear(3, 2, seed=99)
        other.load_state_dict(state)
        assert np.allclose(other.weight.data, model.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        model = Linear(3, 2)
        with pytest.raises(ValueError):
            model.load_state_dict({"weight": np.zeros((1, 1))})

    def test_load_state_dict_unknown_key(self):
        model = Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"nope": np.zeros((3, 2))})

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert not model.layers[0].training


class TestLossesAndOptim:
    def test_cross_entropy_known_value(self):
        logits = Tensor(np.array([[10.0, 0.0], [0.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 0.01

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 2, 2))), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 2))), np.array([0]))

    def test_log_softmax_normalises(self):
        out = log_softmax(Tensor(np.random.default_rng(0).normal(size=(3, 5))))
        assert np.allclose(np.exp(out.data).sum(axis=-1), 1.0)

    def test_bce_and_mse_positive(self):
        logits = Tensor(np.array([0.5, -0.5]))
        assert binary_cross_entropy_with_logits(logits, np.array([1, 0])).item() > 0
        assert mse_loss(Tensor(np.array([1.0, 2.0])), np.array([1.0, 1.0])).item() == pytest.approx(0.5)

    def test_sgd_reduces_quadratic(self):
        weight = Parameter(np.array([5.0]))
        optimizer = SGD([weight], learning_rate=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            loss = (Tensor(weight.data, requires_grad=False) * 0).sum()  # placeholder
            weight.grad = 2 * weight.data  # d/dw of w^2
            optimizer.step()
        assert abs(weight.data[0]) < 0.01

    def test_adam_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        true_weights = np.array([1.0, -2.0, 0.5])
        y = X @ true_weights
        layer = Linear(3, 1, seed=0)
        optimizer = Adam(layer.parameters(), learning_rate=0.05)
        for _ in range(200):
            optimizer.zero_grad()
            predictions = layer(Tensor(X)).reshape(100)
            loss = mse_loss(predictions, y)
            loss.backward()
            optimizer.step()
        assert np.allclose(layer.weight.data.reshape(-1), true_weights, atol=0.1)

    def test_clip_gradients(self):
        weight = Parameter(np.ones(4))
        weight.grad = np.full(4, 100.0)
        norm = clip_gradients([weight], max_norm=1.0)
        assert norm > 1.0
        assert np.linalg.norm(weight.grad) <= 1.0 + 1e-9

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([], learning_rate=0.1)


class TestTrainer:
    def test_loss_decreases_on_separable_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 6))
        y = (X[:, 0] > 0).astype(int)
        model = Sequential(Linear(6, 8, seed=0), ReLU(), Linear(8, 2, seed=1))
        trainer = Trainer(model, TrainerConfig(epochs=12, batch_size=16, learning_rate=1e-2, seed=0))
        history = trainer.fit(X, y)
        assert history.losses[-1] < history.losses[0]
        assert history.accuracies[-1] > 0.8

    def test_predict_logits_shape(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 4))
        y = rng.integers(0, 2, 30)
        model = Sequential(Linear(4, 2, seed=0))
        trainer = Trainer(model, TrainerConfig(epochs=1, batch_size=8))
        trainer.fit(X, y)
        assert trainer.predict_logits(X).shape == (30, 2)

    def test_final_loss_property(self):
        trainer = Trainer(Sequential(Linear(2, 2)))
        assert np.isnan(trainer.history.final_loss)
