"""Tests for the request-facing scoring subsystem (``repro.serving``).

Covers the three cache layers (verdict cache over the feature cache over
the kernels), the micro-batcher, the configurable decision threshold (both
the serving knob and the detector-level satellite), address ingest through
the simulated JSON-RPC node, and the :class:`ServiceStats` telemetry
surface the ROADMAP asks for.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.chain.rpc import SimulatedEthereumNode
from repro.core.config import Scale
from repro.features.batch import BatchFeatureService
from repro.features.store import FeatureStore
from repro.models.hsc import make_random_forest_hsc
from repro.serving import ScoringService, ServiceStats, ServingConfig, Verdict


class CountingDetector:
    """Wrap a fitted detector, counting vectorized ``predict_proba`` passes."""

    def __init__(self, detector):
        self._detector = detector
        self.calls = 0
        self.rows_scored = 0

    def __getattr__(self, name):
        return getattr(self._detector, name)

    def predict_proba(self, bytecodes):
        self.calls += 1
        self.rows_scored += len(bytecodes)
        return self._detector.predict_proba(bytecodes)


@pytest.fixture(scope="module")
def module_service():
    return BatchFeatureService()


@pytest.fixture(scope="module")
def fitted_detector(dataset, module_service):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = module_service
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


@pytest.fixture()
def detector(fitted_detector):
    return CountingDetector(fitted_detector)


@pytest.fixture()
def codes(dataset):
    return dataset.bytecodes[:16]


class TestServingConfig:
    def test_defaults_validate(self):
        config = ServingConfig()
        assert config.max_batch >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"verdict_cache_size": -1},
            {"latency_window": 0},
            {"decision_threshold": 1.5},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_from_scale_reads_serving_knobs(self):
        scale = Scale(
            serving_max_batch=7,
            serving_max_wait_ms=1.5,
            serving_verdict_cache=99,
            serving_threshold=0.7,
        )
        config = ServingConfig.from_scale(scale)
        assert config.max_batch == 7
        assert config.max_wait_ms == 1.5
        assert config.verdict_cache_size == 99
        assert config.decision_threshold == 0.7

    def test_from_scale_default_adopts_detector_threshold(self, detector):
        # Scale.serving_threshold defaults to None, which must flow through
        # from_scale so a tuned detector.decision_threshold is not silently
        # overridden by a fixed serving default.
        config = ServingConfig.from_scale(Scale())
        assert config.decision_threshold is None
        detector.decision_threshold = 0.7
        try:
            with ScoringService(detector, config=config) as service:
                assert service.decision_threshold == 0.7
        finally:
            detector.decision_threshold = 0.5


class TestScoreBatch:
    def test_probabilities_match_direct_detector(self, detector, codes):
        expected = detector.predict_proba(codes)[:, 1]
        with ScoringService(detector) as service:
            verdicts = service.score_batch(codes)
        assert [v.probability for v in verdicts] == pytest.approx(list(expected), abs=0)

    def test_second_pass_served_from_verdict_cache(self, detector, codes):
        with ScoringService(detector) as service:
            service.score_batch(codes)
            calls_after_first = detector.calls
            verdicts = service.score_batch(codes)
            assert detector.calls == calls_after_first
            assert all(v.cached for v in verdicts)
            stats = service.stats()
        assert stats.verdict_hits == len(codes)

    def test_duplicates_deduplicated_within_one_pass(self, detector, codes):
        duplicated = list(codes) + list(codes)
        with ScoringService(detector) as service:
            verdicts = service.score_batch(duplicated)
        assert detector.rows_scored == len(codes)  # one model row per unique
        first, second = verdicts[: len(codes)], verdicts[len(codes):]
        assert [v.probability for v in first] == [v.probability for v in second]

    def test_empty_batch(self, detector):
        with ScoringService(detector) as service:
            assert service.score_batch([]) == []


class TestDecisionThreshold:
    def test_detector_predict_honours_attribute(self, fitted_detector, codes):
        probabilities = fitted_detector.predict_proba(codes)[:, 1]
        fitted_detector.decision_threshold = 0.9
        try:
            predictions = fitted_detector.predict(codes)
            assert np.array_equal(predictions, (probabilities >= 0.9).astype(int))
        finally:
            fitted_detector.decision_threshold = 0.5
        assert np.array_equal(
            fitted_detector.predict(codes), (probabilities >= 0.5).astype(int)
        )

    def test_service_threshold_defaults_to_detector(self, detector):
        with ScoringService(detector) as service:
            assert service.decision_threshold == detector.decision_threshold

    def test_config_threshold_overrides_detector(self, detector):
        config = ServingConfig(decision_threshold=0.9)
        with ScoringService(detector, config=config) as service:
            assert service.decision_threshold == 0.9

    def test_rethresholding_redecides_without_rescoring(self, detector, codes):
        with ScoringService(detector) as service:
            service.score_batch(codes)
            calls = detector.calls
            service.decision_threshold = 0.0
            verdicts = service.score_batch(codes)
            assert detector.calls == calls
            assert all(v.is_phishing for v in verdicts)
            assert all(v.threshold == 0.0 for v in verdicts)
            service.decision_threshold = 1.0
            verdicts = service.score_batch(codes)
            assert not any(v.probability < 1.0 and v.is_phishing for v in verdicts)

    def test_invalid_threshold_rejected(self, detector):
        with ScoringService(detector) as service:
            with pytest.raises(ValueError):
                service.decision_threshold = -0.1


class TestMicroBatching:
    def test_concurrent_submissions_coalesce(self, detector, codes):
        config = ServingConfig(max_batch=8, max_wait_ms=20.0)
        with ScoringService(detector, config=config) as service:
            expected = {
                bytes(code): probability
                for code, probability in zip(
                    codes, detector.predict_proba(codes)[:, 1]
                )
            }
            calls_before = detector.calls
            with ThreadPoolExecutor(max_workers=16) as pool:
                verdicts = list(pool.map(service.score, codes))
            stats = service.stats()
        for code, verdict in zip(codes, verdicts):
            assert verdict.probability == expected[bytes(code)]
        # Far fewer vectorized passes than requests, each bounded by max_batch.
        assert detector.calls - calls_before < len(codes)
        assert stats.max_batch_size <= 8
        assert stats.batches >= 1
        assert stats.requests == len(codes)

    def test_submit_future_resolves(self, detector, codes):
        with ScoringService(detector) as service:
            future = service.submit(codes[0])
            verdict = future.result(timeout=5)
            assert isinstance(verdict, Verdict)
            assert not verdict.cached
            assert service.submit(codes[0]).result(timeout=5).cached

    def test_flush_on_max_wait_even_when_batch_not_full(self, detector, codes):
        config = ServingConfig(max_batch=1000, max_wait_ms=5.0)
        with ScoringService(detector, config=config) as service:
            verdict = service.score(codes[0])
            assert verdict.latency_ms >= 5.0  # waited out the batching window

    def test_submit_after_close_raises(self, detector, codes):
        service = ScoringService(detector)
        service.score(codes[0])
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(codes[1])

    def test_close_is_idempotent(self, detector):
        service = ScoringService(detector)
        service.close()
        service.close()

    def test_model_failure_propagates_to_caller(self, fitted_detector, codes):
        class ExplodingDetector(CountingDetector):
            def predict_proba(self, bytecodes):
                raise RuntimeError("model crashed")

        with ScoringService(ExplodingDetector(fitted_detector)) as service:
            with pytest.raises(RuntimeError, match="model crashed"):
                service.score(codes[0])


class TestAddressIngest:
    def test_score_address_fetches_and_scores(self, detector, corpus):
        node = SimulatedEthereumNode.from_records(corpus.records)
        record = corpus.records[0]
        with ScoringService(detector, node=node) as service:
            verdict = service.score_address(record.address)
            assert verdict.address == record.address
            direct = detector.predict_proba([record.bytecode])[0, 1]
            assert verdict.probability == float(direct)
            # Proxy-clone economics: a second screening of the same address
            # is a pure verdict-cache hit, no RPC-side model work.
            assert service.score_address(record.address).cached

    def test_score_address_without_node_raises(self, detector):
        with ScoringService(detector) as service:
            with pytest.raises(RuntimeError, match="without a node"):
                service.score_address("0x" + "11" * 20)


class TestTelemetry:
    def test_stats_expose_feature_cache_and_latencies(self, detector, codes):
        with ScoringService(detector) as service:
            service.score_batch(codes)
            service.score_batch(codes)
            stats = service.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.requests == 2 * len(codes)
        assert stats.verdict_hit_rate == 0.5
        assert stats.verdict_entries == len({bytes(code) for code in codes})
        # The detector was fitted through the same service, so serving over
        # fit-time contracts is fully warm — and the telemetry reports
        # *serving-lifetime deltas*, not the training traffic: every lookup
        # hits, and zero kernel passes are attributed to serving.
        assert stats.feature_hit_rate == 1.0
        assert stats.feature_lookups > 0
        assert stats.kernel_passes == 0
        assert stats.latency_ms_p50 > 0.0
        assert stats.latency_ms_p95 >= stats.latency_ms_p50
        assert stats.latency_ms_p99 >= stats.latency_ms_p95
        assert stats.store_file_hits is None

    def test_stats_surface_store_counters(self, detector, tmp_path):
        store = FeatureStore(tmp_path)
        with ScoringService(detector, store=store) as service:
            stats = service.stats()
        assert stats.store_file_hits == 0
        assert stats.store_file_misses == 0

    def test_verdict_cache_disabled(self, detector, codes):
        config = ServingConfig(verdict_cache_size=0)
        with ScoringService(detector, config=config) as service:
            service.score_batch(codes)
            verdicts = service.score_batch(codes)
            stats = service.stats()
        assert not any(v.cached for v in verdicts)
        assert stats.verdict_hits == 0
        assert stats.verdict_entries == 0

    def test_verdict_cache_evicts_lru(self, detector, codes):
        config = ServingConfig(verdict_cache_size=4)
        with ScoringService(detector, config=config) as service:
            service.score_batch(codes)
            stats = service.stats()
        assert stats.verdict_entries <= 4

    def test_injected_feature_service_reaches_detector(
        self, fitted_detector, module_service, codes
    ):
        dedicated = BatchFeatureService()
        try:
            with ScoringService(fitted_detector, feature_service=dedicated) as service:
                service.score_batch(codes)
                assert service.feature_service is dedicated
                # The injection propagated into the detector's extractor, and
                # the scored batch resolved its features through it.
                assert fitted_detector.extractor.service is dedicated
                assert dedicated.aggregate_stats().lookups > 0
        finally:
            fitted_detector.feature_service = module_service


class TestWarmStart:
    """Eviction-aware feature-cache warm-up from a ``FeatureStore`` file."""

    @pytest.fixture()
    def store_path(self, dataset, tmp_path):
        """A persisted feature-cache file covering the whole dataset."""
        store = FeatureStore(tmp_path / "store")
        with store.session(dataset.bytecodes, install_default=False) as session:
            pass  # the pre-warm sweep inside the session fills both views
        assert session.saved
        return session.path

    @pytest.fixture()
    def cold_detector(self, dataset, module_service):
        """A fitted detector whose feature service holds nothing yet."""
        detector = make_random_forest_hsc(seed=3)
        detector.feature_service = module_service  # warm fit, cold serving
        detector.fit(dataset.bytecodes, dataset.labels)
        return detector

    def test_warm_start_scores_first_batch_without_kernels(
        self, cold_detector, dataset, store_path
    ):
        with ScoringService(cold_detector, warmup_path=store_path) as service:
            verdicts = service.score_batch(dataset.bytecodes)
            stats = service.stats()
        assert len(verdicts) == len(dataset.bytecodes)
        # The first batch the service ever scored ran zero bytecode sweeps:
        # every feature lookup was served from the pre-populated cache.
        assert stats.kernel_passes == 0
        assert stats.feature_hit_rate == 1.0
        assert stats.feature_lookups > 0

    def test_warmup_grows_dedicated_cache_to_fit_file(
        self, cold_detector, dataset, store_path
    ):
        tiny = BatchFeatureService(cache_size=4)
        with ScoringService(
            cold_detector, feature_service=tiny, warmup_path=store_path
        ) as service:
            assert service.feature_service is tiny
            # Eviction-aware: the capacity grew to fit every stored entry
            # instead of silently dropping all but 4 of them.
            assert tiny.cache_size == len(tiny)
            assert len(tiny) > 4
            service.score_batch(dataset.bytecodes)
            assert service.stats().kernel_passes == 0

    def test_warmup_without_explicit_service_is_dedicated(
        self, cold_detector, module_service, store_path
    ):
        from repro.features.batch import get_default_service

        with ScoringService(cold_detector, warmup_path=store_path) as service:
            # Loading replaces a cache wholesale, so the warm-up must never
            # implicitly clobber the process-wide shared service.
            assert service.feature_service is not get_default_service()
            assert service.feature_service is not module_service
            assert len(service.feature_service) > 0

    def test_warmup_missing_file_raises(self, cold_detector, tmp_path):
        from repro.features.batch import CacheLoadError

        with pytest.raises(CacheLoadError):
            ScoringService(cold_detector, warmup_path=tmp_path / "absent.npz")
