"""Tests for ``repro.evm.cfg``: metadata split, blocks, dataflow, metrics.

Includes the shared truncated-``PUSH`` golden vectors pinning that the
:class:`~repro.evm.Disassembler`, the :mod:`~repro.evm.fastcount` kernels
and the CFG builder agree on the final partial instruction, and the
``PUSH2 0x5b5b`` regression pinning that ``jump_destinations`` (and the
CFG's JUMPDEST accounting) never count ``0x5b`` bytes inside PUSH operand
data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain import templates
from repro.evm import (
    CFG_METRIC_NAMES,
    Disassembler,
    analyze_cfg,
    assemble,
    basic_blocks,
    cfg_metrics_vector,
    metadata_offset,
    opcode_sequence,
    push,
    split_metadata,
)
from repro.evm.cfg import AbsVal, UNKNOWN


# ---------------------------------------------------------------------------
# shared truncated-PUSH golden vectors
# ---------------------------------------------------------------------------

#: (bytecode, expected (opcode value, operand width) pairs).  The final
#: instruction of each vector is a PUSH whose declared operand extends past
#: the end of the code: all three consumers must treat the remaining bytes
#: as one truncated instruction (no zero-padding, no phantom instructions).
TRUNCATED_PUSH_VECTORS = [
    (bytes([0x60]), [(0x60, 0)]),
    (bytes([0x60, 0x01, 0x63, 0x5B, 0x5B]), [(0x60, 1), (0x63, 2)]),
    (bytes([0x00, 0x7F]) + b"\xAA" * 10, [(0x00, 0), (0x7F, 10)]),
    (bytes([0x5B, 0x61, 0x00]), [(0x5B, 0), (0x61, 1)]),
]


@pytest.mark.parametrize("code,expected", TRUNCATED_PUSH_VECTORS)
def test_truncated_push_golden_vector_disassembler(code, expected):
    instructions = list(Disassembler().iter_instructions(code))
    assert [
        (i.opcode.value, len(i.operand or b"")) for i in instructions
    ] == expected


@pytest.mark.parametrize("code,expected", TRUNCATED_PUSH_VECTORS)
def test_truncated_push_golden_vector_fastcount(code, expected):
    sequence = opcode_sequence(code)
    assert list(zip(sequence.opcodes.tolist(), sequence.widths.tolist())) == expected


@pytest.mark.parametrize("code,expected", TRUNCATED_PUSH_VECTORS)
def test_truncated_push_golden_vector_cfg(code, expected):
    analysis = analyze_cfg(code, strip_metadata=False)
    sequence = analysis.sequence
    assert list(zip(sequence.opcodes.tolist(), sequence.widths.tolist())) == expected
    # The block partition covers exactly the truncated instruction stream.
    assert sum(len(block) for block in analysis.blocks) == len(expected)
    assert analysis.metrics.instructions == len(expected)


def test_jump_destinations_ignores_0x5b_inside_push_operand():
    # PUSH2 0x5b5b: both 0x5b bytes are immediate data, not JUMPDESTs.
    code = bytes([0x61, 0x5B, 0x5B, 0x00])
    assert Disassembler().jump_destinations(code) == []
    analysis = analyze_cfg(code, strip_metadata=False)
    assert analysis.jumpdest_offsets() == []
    assert analysis.metrics.jumpdests == 0
    # And a real JUMPDEST after the payload is still found at its offset.
    code = bytes([0x61, 0x5B, 0x5B, 0x5B, 0x00])
    assert Disassembler().jump_destinations(code) == [3]
    assert analyze_cfg(code, strip_metadata=False).jumpdest_offsets() == [3]


# ---------------------------------------------------------------------------
# metadata split
# ---------------------------------------------------------------------------


def test_split_metadata_roundtrips_template_trailer():
    rng = np.random.default_rng(3)
    family = templates.BENIGN_FAMILIES[0]
    full = templates.build_family_bytecode(family, rng)
    code, trailer = split_metadata(full)
    assert code + trailer == full
    assert trailer, "template bytecodes carry a CBOR trailer"
    assert trailer[:1] in (b"\xa2", b"\xa1")


def test_split_metadata_ignores_marker_inside_push_immediate():
    # PUSH7 whose immediate spells the ipfs marker byte-for-byte.
    code = bytes([0x66]) + b"\xa2\x64\x69\x70\x66\x73\x00" + bytes([0x00])
    assert metadata_offset(code) is None
    stripped, trailer = split_metadata(code)
    assert stripped == code and trailer == b""


def test_split_metadata_finds_aligned_marker():
    body = bytes([0x60, 0x01, 0x00])  # PUSH1 1; STOP
    trailer = b"\xa2\x64\x69\x70\x66\x73" + bytes(10)
    code, found = split_metadata(body + trailer)
    assert code == body
    assert found == trailer


def test_minimal_proxy_has_no_trailer_and_resolves_fully():
    proxy = templates.minimal_proxy_bytecode("0x" + "11" * 20)
    analysis = analyze_cfg(proxy)
    assert analysis.trailer == b""
    assert analysis.metrics.unresolved_jumps == 0
    assert analysis.metrics.delegatecalls == 1


# ---------------------------------------------------------------------------
# basic blocks + dataflow
# ---------------------------------------------------------------------------


def test_basic_blocks_partition_and_leaders():
    # PUSH1 4; JUMP; STOP; JUMPDEST; PUSH1 0; STOP  (JUMPDEST at offset 4)
    code = assemble([push(4, 1), "JUMP", "STOP", "JUMPDEST", push(0, 1), "STOP"])
    sequence = opcode_sequence(code)
    blocks = basic_blocks(sequence, len(code))
    # Leaders: 0 (entry), STOP follows JUMP, JUMPDEST.
    assert [block.first for block in blocks] == [0, 2, 3]
    assert sum(len(block) for block in blocks) == len(sequence)
    assert blocks[2].offset == 4


def test_push_driven_jump_resolves_with_edge():
    code = assemble([push(4, 1), "JUMP", "STOP", "JUMPDEST", push(0, 1), "STOP"])
    analysis = analyze_cfg(code, strip_metadata=False)
    assert analysis.metrics.jumps == 1
    assert analysis.metrics.unresolved_jumps == 0
    assert list(analysis.resolved_targets.values()) == [4]
    # Block 0 jumps to the JUMPDEST block (index 2), not the shadowed STOP.
    assert analysis.successors[0] == (2,)


def test_unknown_jump_target_is_unresolved():
    # CALLDATALOAD leaves an unknown on the stack; JUMP cannot resolve.
    code = assemble([push(0, 1), "CALLDATALOAD", "JUMP", "JUMPDEST", "STOP"])
    analysis = analyze_cfg(code, strip_metadata=False)
    assert analysis.metrics.unresolved_jumps == 1
    assert analysis.metrics.resolved_jumps == 0
    assert analysis.unresolved_pcs == [3]


def test_cross_block_constant_propagation_through_fallthrough():
    # The constant is pushed in block 0; the JUMP sits in the fallthrough
    # block after a JUMPDEST — resolution needs entry-stack propagation.
    code = assemble(
        [push(8, 1), "JUMPDEST", push(0, 1), "POP", "JUMP", "STOP", "STOP",
         "JUMPDEST", "STOP"]
    )
    analysis = analyze_cfg(code, strip_metadata=False)
    assert analysis.metrics.unresolved_jumps == 0
    assert 8 in analysis.resolved_targets.values()


def test_terminator_shadowed_code_is_dead_but_jumpdest_code_is_not():
    # STOP; then straight-line code without a JUMPDEST: unreachable.
    code = assemble(["STOP", push(1, 1), "POP", "STOP", "JUMPDEST", "STOP"])
    analysis = analyze_cfg(code, strip_metadata=False)
    assert analysis.metrics.dead_instructions == 3  # PUSH, POP, STOP
    reachable_offsets = {
        analysis.blocks[i].offset for i in analysis.reachable
    }
    assert 0 in reachable_offsets
    assert analysis.blocks[2].offset in reachable_offsets  # JUMPDEST block


def test_dispatcher_selectors_are_extracted():
    rng = np.random.default_rng(11)
    family = templates.BENIGN_FAMILIES[0]  # erc20_token
    full = templates.build_family_bytecode(family, rng)
    analysis = analyze_cfg(full)
    assert analysis.metrics.selectors >= 2
    expected = {
        templates._selector(name)
        for name in ("transfer(address,uint256)", "approve(address,uint256)")
    }
    assert expected & set(analysis.selectors)


# ---------------------------------------------------------------------------
# metrics + full-corpus resolution
# ---------------------------------------------------------------------------


def test_metrics_vector_matches_names():
    vector = cfg_metrics_vector(b"")
    assert vector.shape == (len(CFG_METRIC_NAMES),)
    assert vector.dtype == np.float64
    code = assemble([push(0, 1), "STOP"])
    analysis = analyze_cfg(code, strip_metadata=False)
    vector = analysis.metrics.to_vector()
    assert vector[CFG_METRIC_NAMES.index("instructions")] == 2.0
    assert vector[CFG_METRIC_NAMES.index("code_bytes")] == 3.0


def test_empty_bytecode_analysis_is_empty():
    analysis = analyze_cfg(b"")
    assert analysis.blocks == []
    assert analysis.events == []
    assert analysis.metrics.instructions == 0
    assert analysis.metrics.dead_ratio == 0.0


def test_full_corpus_all_jumps_resolved(corpus):
    unique = {bytes(record.bytecode): None for record in corpus.records}
    unresolved = 0
    for code in unique:
        unresolved += analyze_cfg(code).metrics.unresolved_jumps
    assert unresolved == 0


def test_abs_val_join_degrades_to_unknown():
    from repro.evm.cfg import _join_stacks

    a = [AbsVal("const", 1), AbsVal("const", 2)]
    b = [AbsVal("const", 1), AbsVal("const", 3)]
    assert _join_stacks(a, b) == [AbsVal("const", 1), UNKNOWN]
    # Depth mismatch truncates to the shallower stack, top-aligned.
    assert _join_stacks([AbsVal("const", 9)] + a, a) == a
