"""Tests for the on-disk corpus cache used by the benchmark harness."""

import pytest

from repro.chain.corpus_cache import (
    CorpusCacheError,
    config_digest,
    corpus_cache_path,
    load_corpus,
    load_or_generate,
    save_corpus,
)
from repro.chain.generator import ContractCorpusGenerator, CorpusConfig

TINY = CorpusConfig(n_phishing=14, n_benign=10, seed=3, hard_fraction=0.2)


def records_equal(first, second):
    if len(first.records) != len(second.records):
        return False
    return all(
        (a.address, a.bytecode, a.label, a.deployed_month, a.family, a.metadata)
        == (b.address, b.bytecode, b.label, b.deployed_month, b.family, b.metadata)
        for a, b in zip(first.records, second.records)
    )


class TestLoadOrGenerate:
    def test_second_build_is_a_cache_hit(self, tmp_path):
        first, from_cache_first = load_or_generate(TINY, tmp_path)
        assert not from_cache_first
        assert corpus_cache_path(TINY, tmp_path).exists()
        second, from_cache_second = load_or_generate(TINY, tmp_path)
        assert from_cache_second
        assert records_equal(first, second)
        assert second.config == TINY

    def test_different_config_regenerates(self, tmp_path):
        load_or_generate(TINY, tmp_path)
        other = CorpusConfig(n_phishing=16, n_benign=10, seed=3, hard_fraction=0.2)
        assert config_digest(other) != config_digest(TINY)
        corpus, from_cache = load_or_generate(other, tmp_path)
        assert not from_cache
        assert len(corpus.records) == 26

    def test_corrupt_cache_regenerates_gracefully(self, tmp_path):
        first, _ = load_or_generate(TINY, tmp_path)
        path = corpus_cache_path(TINY, tmp_path)
        path.write_bytes(b"not a corpus")
        regenerated, from_cache = load_or_generate(TINY, tmp_path)
        assert not from_cache
        assert records_equal(first, regenerated)
        # The overwritten file is valid again.
        _, from_cache = load_or_generate(TINY, tmp_path)
        assert from_cache

    def test_cached_corpus_matches_direct_generation(self, tmp_path):
        direct = ContractCorpusGenerator(TINY).generate()
        cached, _ = load_or_generate(TINY, tmp_path)
        reloaded, from_cache = load_or_generate(TINY, tmp_path)
        assert from_cache
        assert records_equal(direct, cached)
        assert records_equal(direct, reloaded)


class TestRejection:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CorpusCacheError):
            load_corpus(tmp_path / "nope.npz", TINY)

    def test_unwritable_save_path_raises_domain_error(self, tmp_path):
        # Same write-side contract as the feature cache: a parent occupied
        # by a regular file surfaces as CorpusCacheError, not a raw OSError.
        blocker = tmp_path / "blocker"
        blocker.write_bytes(b"file, not a directory")
        corpus = ContractCorpusGenerator(TINY).generate()
        with pytest.raises(CorpusCacheError):
            save_corpus(corpus, blocker / "corpus.npz")

    def test_digest_mismatch_rejected(self, tmp_path):
        corpus = ContractCorpusGenerator(TINY).generate()
        path = tmp_path / "corpus.npz"
        save_corpus(corpus, path)
        other = CorpusConfig(n_phishing=15, n_benign=10, seed=3, hard_fraction=0.2)
        with pytest.raises(CorpusCacheError) as excinfo:
            load_corpus(path, other)
        assert "different config" in str(excinfo.value)

    def test_shifted_lengths_rejected(self, tmp_path):
        # Moving bytes between adjacent records keeps the total length (so
        # the blob-size check passes) but garbles every bytecode boundary;
        # the payload digest must catch it.
        import numpy as np

        corpus = ContractCorpusGenerator(TINY).generate()
        path = tmp_path / "corpus.npz"
        save_corpus(corpus, path)
        with np.load(str(path), allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        lengths = arrays["code_lengths"].copy()
        lengths[0] -= 5
        lengths[1] += 5
        arrays["code_lengths"] = lengths
        tampered = tmp_path / "tampered.npz"
        with open(tampered, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(CorpusCacheError):
            load_corpus(tampered, TINY)

    def test_truncated_file_rejected(self, tmp_path):
        corpus = ContractCorpusGenerator(TINY).generate()
        path = tmp_path / "corpus.npz"
        save_corpus(corpus, path)
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CorpusCacheError):
            load_corpus(clipped, TINY)
