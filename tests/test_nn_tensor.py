"""Tests for the autograd tensor, including numerical gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, stack


def numerical_gradient(function, arrays, index, eps=1e-5):
    """Central-difference gradient of ``function`` w.r.t. ``arrays[index]``."""
    base = [np.array(a, dtype=float) for a in arrays]
    gradient = np.zeros_like(base[index])
    iterator = np.nditer(base[index], flags=["multi_index"])
    while not iterator.finished:
        idx = iterator.multi_index
        plus = [a.copy() for a in base]
        minus = [a.copy() for a in base]
        plus[index][idx] += eps
        minus[index][idx] -= eps
        gradient[idx] = (
            function(*[Tensor(a) for a in plus]).item()
            - function(*[Tensor(a) for a in minus]).item()
        ) / (2 * eps)
        iterator.iternext()
    return gradient


def check_gradients(function, shapes, seed=0, tolerance=1e-4):
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=shape) for shape in shapes]
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    output = function(*tensors)
    output.backward()
    for index, tensor in enumerate(tensors):
        expected = numerical_gradient(function, arrays, index)
        assert np.max(np.abs(expected - tensor.grad)) < tolerance


class TestGradientChecks:
    def test_matmul_and_sum(self):
        check_gradients(lambda a, b: (a @ b).sum(), [(3, 4), (4, 2)])

    def test_broadcast_add(self):
        check_gradients(lambda a, b: (a + b).sum(), [(3, 4), (4,)])

    def test_elementwise_chain(self):
        check_gradients(lambda a: (a.relu() * a.sigmoid() + a.tanh()).sum(), [(4, 3)])

    def test_gelu(self):
        check_gradients(lambda a: a.gelu().sum(), [(5,)])

    def test_softmax_weighted(self):
        weights = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        check_gradients(lambda a: (a.softmax(axis=-1) * weights).sum(), [(3, 4)])

    def test_division_and_power(self):
        check_gradients(lambda a, b: ((a**2) / (b**2 + 1.0)).sum(), [(3, 3), (3, 3)])

    def test_mean_and_variance_pattern(self):
        def layer_norm_like(a):
            mean = a.mean(axis=-1, keepdims=True)
            centered = a - mean
            variance = (centered * centered).mean(axis=-1, keepdims=True)
            return (centered * ((variance + 1e-5) ** -0.5)).sum()

        check_gradients(layer_norm_like, [(4, 6)])

    def test_getitem(self):
        check_gradients(lambda a: (a[:, 1:3] * 2.0).sum(), [(4, 5)])

    def test_concatenate(self):
        check_gradients(
            lambda a, b: Tensor.concatenate([a, b], axis=1).sum(), [(2, 3), (2, 2)]
        )

    def test_transpose_and_reshape(self):
        check_gradients(lambda a: (a.transpose(1, 0).reshape(2, 6) ** 2).sum(), [(6, 2)])

    def test_max_reduction(self):
        check_gradients(lambda a: a.max(axis=1).sum(), [(4, 5)], seed=3)

    def test_log_and_exp(self):
        check_gradients(lambda a: ((a * a + 1.0).log() + a.exp() * 0.01).sum(), [(3, 3)])

    def test_stack(self):
        check_gradients(lambda a, b: (stack([a, b], axis=0) ** 2).sum(), [(3,), (3,)])


class TestTensorBasics:
    def test_shape_properties(self):
        tensor = Tensor(np.zeros((2, 3)))
        assert tensor.shape == (2, 3)
        assert tensor.ndim == 2
        assert tensor.size == 6
        assert len(tensor) == 2

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_detach_breaks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        detached = (a * 2).detach()
        assert not detached.requires_grad

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_gradient_accumulates_across_backwards(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).sum().backward()
        (a * 3).sum().backward()
        assert np.allclose(a.grad, 5.0)

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_tracking_when_not_required(self):
        a = Tensor(np.ones(3))
        b = a * 2
        assert not b.requires_grad

    def test_rsub_and_rdiv(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        ((1.0 - a) + (1.0 / a)).sum().backward()
        assert a.grad is not None

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes(self, rows, cols):
        a = Tensor(np.ones((rows, 4)))
        b = Tensor(np.ones((4, cols)))
        assert (a @ b).shape == (rows, cols)
