"""Tests for the permutation Shapley explainer."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.shap import PermutationShapExplainer, positive_class_predictor


@pytest.fixture(scope="module")
def linear_problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 5))
    # Only features 0 and 1 matter.
    y = (2 * X[:, 0] - 3 * X[:, 1] > 0).astype(int)
    return X, y


class TestExplainer:
    def test_shapes(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        explainer = PermutationShapExplainer(
            positive_class_predictor(model), X[:50], n_permutations=8, seed=0
        )
        explanation = explainer.shap_values(X[:6], feature_names=list("abcde"))
        assert explanation.values.shape == (6, 5)
        assert explanation.feature_names == list("abcde")

    def test_informative_features_rank_highest(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        explainer = PermutationShapExplainer(
            positive_class_predictor(model), X[:60], n_permutations=16, seed=1
        )
        explanation = explainer.shap_values(X[:20])
        top_two = set(explanation.top_features(2))
        assert top_two == {0, 1}

    def test_additivity_approximately_holds(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        predict = positive_class_predictor(model)
        explainer = PermutationShapExplainer(predict, X[:60], n_permutations=40, seed=2)
        explanation = explainer.shap_values(X[:5])
        reconstructed = explanation.base_value + explanation.values.sum(axis=1)
        actual = predict(X[:5])
        assert np.allclose(reconstructed, actual, atol=0.15)

    def test_works_with_tree_model(self, linear_problem):
        X, y = linear_problem
        model = RandomForestClassifier(n_estimators=10, max_depth=4, seed=0).fit(X, y)
        explainer = PermutationShapExplainer(
            positive_class_predictor(model), X[:40], n_permutations=4, seed=0
        )
        explanation = explainer.shap_values(X[:3])
        assert np.all(np.isfinite(explanation.values))

    def test_background_subsampling(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        explainer = PermutationShapExplainer(
            positive_class_predictor(model), X, max_background=10, seed=0
        )
        assert len(explainer.background) == 10

    def test_invalid_background_rejected(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValueError):
            PermutationShapExplainer(positive_class_predictor(model), np.zeros((0, 5)))

    def test_invalid_explained_shape_rejected(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        explainer = PermutationShapExplainer(positive_class_predictor(model), X[:10])
        with pytest.raises(ValueError):
            explainer.shap_values(X[0])

    def test_mean_absolute_importance_nonnegative(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        explainer = PermutationShapExplainer(positive_class_predictor(model), X[:30], n_permutations=4)
        explanation = explainer.shap_values(X[:4])
        assert np.all(explanation.mean_absolute_importance() >= 0)
