"""Tests for the deploy-time monitoring subsystem (``repro.monitor``)."""

import json

import numpy as np
import pytest

from repro.chain.blocks import Block, BlockStream, BlockStreamConfig
from repro.chain.rpc import SimulatedEthereumNode
from repro.core.config import Scale
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor import (
    Alert,
    BlockFollower,
    Checkpoint,
    CheckpointError,
    DriftTracker,
    ImpersonationAlert,
    JsonlSink,
    ListSink,
    MonitorConfig,
    MonitorCursor,
    MonitorPipeline,
)
from repro.obs import trace as obs_trace
from repro.serving import ScoringService, ServingConfig


@pytest.fixture(scope="module")
def stream_config():
    return BlockStreamConfig(seed=23, deploys_per_block=2.0, phishing_share=0.35)


@pytest.fixture(scope="module")
def node(stream_config):
    node = SimulatedEthereumNode()
    node.mine(BlockStream(stream_config), 32)
    return node


@pytest.fixture(scope="module")
def fitted_detector(dataset):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = BatchFeatureService()
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


@pytest.fixture()
def service(fitted_detector, node):
    with ScoringService(fitted_detector, node=node, config=ServingConfig(max_wait_ms=0.0)) as service:
        yield service


@pytest.fixture()
def monitor_config():
    return MonitorConfig(confirmations=2, poll_blocks=5, drift_window=10)


class TestCheckpoint:
    def test_missing_file_loads_none(self, tmp_path):
        assert Checkpoint(tmp_path / "cursor.json").load() is None

    def test_roundtrip(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "cursor.json")
        cursor = MonitorCursor(
            next_block=7,
            last_hash="0x" + "ab" * 32,
            blocks_scanned=7,
            contracts_scanned=19,
            alerts_emitted=4,
        )
        checkpoint.save(cursor)
        assert checkpoint.exists()
        state = checkpoint.load()
        assert state.cursor == cursor
        assert state.drift is None
        assert state.impersonation is None

    def test_roundtrip_with_component_state(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "cursor.json")
        drift = {"reference": [0.25, 0.5], "scores": [0.1], "alerts": [False],
                 "start_block": 4, "last_block": 4, "completed_windows": 3}
        impersonation = {"known": ["0x" + "ab" * 20], "observed": 9, "alerts_emitted": 1}
        checkpoint.save(MonitorCursor(next_block=5), drift=drift, impersonation=impersonation)
        state = checkpoint.load()
        assert state.drift == drift
        assert state.impersonation == impersonation

    def test_save_creates_parent_directories(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "deep" / "nested" / "cursor.json")
        checkpoint.save(MonitorCursor())
        assert checkpoint.load().cursor == MonitorCursor()

    def test_save_leaves_no_staging_files(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "cursor.json")
        for block in range(5):
            checkpoint.save(MonitorCursor(next_block=block))
        assert [p.name for p in tmp_path.iterdir()] == ["cursor.json"]

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "cursor.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            Checkpoint(path).load()

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "cursor.json"
        path.write_text(json.dumps({"version": 999, "next_block": 0}), encoding="utf-8")
        with pytest.raises(CheckpointError):
            Checkpoint(path).load()

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "cursor.json"
        path.write_text(
            json.dumps({"version": 2, "cursor": {"next_block": 3}}), encoding="utf-8"
        )
        with pytest.raises(CheckpointError):
            Checkpoint(path).load()

    def test_stale_v1_file_raises_loudly(self, tmp_path):
        # v1 persisted the flat cursor alone; silently adopting it would
        # re-baseline drift detection after every restart.
        path = tmp_path / "cursor.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "next_block": 9,
                    "last_hash": "0x" + "cd" * 32,
                    "blocks_scanned": 9,
                    "contracts_scanned": 21,
                    "alerts_emitted": 3,
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(CheckpointError, match="version 1"):
            Checkpoint(path).load()

    def test_init_sweeps_stale_staging_of_dead_writers(self, tmp_path):
        # A writer that crashed between the staging write and the atomic
        # rename leaks one staging file per attempt; pid 2**22+5 is far
        # above any live pid on this box.
        dead = tmp_path / f".cursor.json.{2**22 + 5}.abc123.tmp"
        dead.write_text("{}", encoding="utf-8")
        Checkpoint(tmp_path / "cursor.json")
        assert not dead.exists()

    def test_sweep_spares_live_writers_and_other_names(self, tmp_path):
        import os

        live = tmp_path / f".cursor.json.{os.getpid()}.beef.tmp"
        live.write_text("{}", encoding="utf-8")
        other = tmp_path / f".cursor.json.backup.{2**22 + 5}.dead.tmp"
        other.write_text("{}", encoding="utf-8")  # a different checkpoint's name
        odd = tmp_path / ".cursor.json.notapid.tmp"
        odd.write_text("{}", encoding="utf-8")  # malformed: never guessed about
        Checkpoint(tmp_path / "cursor.json")
        assert live.exists()
        assert other.exists()
        assert odd.exists()

    def test_crashed_save_staging_is_swept_on_reopen(self, tmp_path, monkeypatch):
        import os

        checkpoint = Checkpoint(tmp_path / "cursor.json")
        real_replace = os.replace
        monkeypatch.setattr(os, "replace", lambda *a: (_ for _ in ()).throw(OSError("boom")))
        staging = checkpoint._staging_path()
        with pytest.raises(CheckpointError):
            checkpoint.save(MonitorCursor(next_block=3))
        monkeypatch.setattr(os, "replace", real_replace)
        # The failed save cleaned its own staging file already …
        assert not staging.exists()
        # … and a staging file orphaned by a hard kill (no cleanup ran) is
        # swept when the checkpoint name is next opened by a fresh process.
        orphan = tmp_path / f".cursor.json.{2**22 + 7}.{id(checkpoint):x}.tmp"
        orphan.write_text("{}", encoding="utf-8")
        Checkpoint(tmp_path / "cursor.json")
        assert not orphan.exists()

    def test_clear_is_idempotent(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "cursor.json")
        checkpoint.save(MonitorCursor())
        checkpoint.clear()
        checkpoint.clear()
        assert checkpoint.load() is None

    def test_negative_cursor_rejected(self):
        with pytest.raises(ValueError):
            MonitorCursor(next_block=-1)
        with pytest.raises(ValueError):
            MonitorCursor(alerts_emitted=-1)


class TestBlockFollower:
    def test_confirmation_depth_holds_back_tip(self, node):
        follower = BlockFollower(node, confirmations=4)
        blocks = follower.poll()
        # head is 31, so only blocks 0..27 are confirmed.
        assert blocks[-1].number == 27
        assert follower.poll() == []

    def test_zero_confirmations_reach_head(self, node):
        follower = BlockFollower(node, confirmations=0)
        assert follower.poll()[-1].number == 31

    def test_poll_limit_batches_windows(self, node):
        follower = BlockFollower(node, confirmations=2)
        first = follower.poll(limit=10)
        second = follower.poll(limit=10)
        assert [b.number for b in first] == list(range(0, 10))
        assert [b.number for b in second] == list(range(10, 20))

    def test_cursor_resume_mid_chain(self, node):
        full = BlockFollower(node, confirmations=2)
        all_blocks = full.poll()
        resumed = BlockFollower(
            node,
            confirmations=2,
            start_block=12,
            last_hash=all_blocks[11].block_hash,
        )
        assert resumed.poll() == all_blocks[12:]

    def test_linkage_mismatch_rewinds(self, node):
        follower = BlockFollower(
            node, confirmations=2, start_block=10, last_hash="0x" + "ee" * 32
        )
        assert follower.poll() == []
        assert follower.reorgs_detected == 1
        assert follower.next_block == 7  # rewound by confirmations + 1
        assert follower.last_hash == ""
        # The refetch re-links cleanly from the rewound position.
        blocks = follower.poll(limit=5)
        assert [b.number for b in blocks] == [7, 8, 9, 10, 11]

    def test_deep_reorg_rewinds_to_the_fork_point(self):
        class ReorgableNode:
            """Serve a block dict that a test can rewrite mid-follow."""

            def __init__(self, blocks):
                self.blocks = {block.number: block for block in blocks}

            def block_number(self):
                return max(self.blocks)

            def get_block(self, number):
                return self.blocks.get(number)

        def fork_from(blocks, fork_point):
            """Rewrite the chain from ``fork_point`` on (distinct hashes)."""
            forked = list(blocks[:fork_point])
            parent = blocks[fork_point - 1].block_hash
            for original in blocks[fork_point:]:
                block = Block(
                    number=original.number,
                    block_hash="0x" + f"{original.number:02x}" * 32,
                    parent_hash=parent,
                    timestamp=original.timestamp,
                    transactions=original.transactions,
                )
                forked.append(block)
                parent = block.block_hash
            return forked

        original = BlockStream(BlockStreamConfig(seed=5, deploys_per_block=1.0)).take(12)
        node = ReorgableNode(original)
        follower = BlockFollower(node, confirmations=0)
        follower.poll(limit=10)
        assert follower.next_block == 10
        # A 4-deep reorg rewrites blocks 6..11 under the follower's cursor.
        replacement = fork_from(original, 6)
        node.blocks = {block.number: block for block in replacement}
        assert follower.poll() == []
        assert follower.reorgs_detected == 1
        # The rewind walked the recent-hash ring back to the exact fork
        # point, so every replaced block gets re-scored and nothing before
        # the fork is touched again.
        assert follower.next_block == 6
        assert follower.last_hash == original[5].block_hash
        refetched = follower.poll()
        assert [block.number for block in refetched] == [6, 7, 8, 9, 10, 11]
        assert refetched[0].parent_hash == original[5].block_hash
        assert refetched == replacement[6:]

    def test_rewind_never_precedes_genesis(self, node):
        follower = BlockFollower(
            node, confirmations=8, start_block=3, last_hash="0x" + "ee" * 32
        )
        follower.poll()
        assert follower.next_block == 0

    def test_validation(self, node):
        with pytest.raises(ValueError):
            BlockFollower(node, confirmations=-1)
        with pytest.raises(ValueError):
            BlockFollower(node, start_block=-1)
        with pytest.raises(ValueError):
            BlockFollower(node).poll(limit=0)


class TestDriftTracker:
    def test_first_window_becomes_reference(self):
        tracker = DriftTracker(window=4)
        windows = tracker.observe([0.1, 0.2, 0.1, 0.3], [False] * 4, block_number=1)
        assert len(windows) == 1
        assert windows[0].p_value == 1.0
        assert not windows[0].drifted
        assert tracker.reference is not None

    def test_shifted_window_detected(self):
        rng = np.random.default_rng(0)
        tracker = DriftTracker(window=64)
        tracker.observe(rng.uniform(0.0, 0.3, size=64), [False] * 64, block_number=1)
        report = tracker.observe(
            rng.uniform(0.6, 1.0, size=64), [True] * 64, block_number=2
        )[0]
        assert report.drifted
        assert report.p_value < 0.05
        assert report.mean_shift > 0.3
        assert report.alert_rate == 1.0
        assert tracker.drifted

    def test_same_distribution_not_flagged(self):
        rng = np.random.default_rng(1)
        tracker = DriftTracker(window=64, alpha=0.01)
        tracker.observe(rng.uniform(size=64), [False] * 64, block_number=1)
        report = tracker.observe(rng.uniform(size=64), [False] * 64, block_number=2)[0]
        assert not report.drifted

    def test_identical_scores_are_not_drift(self):
        tracker = DriftTracker(window=3)
        tracker.observe([0.5] * 3, [False] * 3, block_number=1)
        report = tracker.observe([0.5] * 3, [False] * 3, block_number=2)[0]
        assert report.statistic == 0.0
        assert report.p_value == 1.0

    def test_explicit_reference_sample(self):
        tracker = DriftTracker(window=32, reference=[0.1] * 16 + [0.2] * 16)
        report = tracker.observe([0.9] * 32, [True] * 32, block_number=5)[0]
        assert report.drifted

    def test_window_block_span_recorded(self):
        tracker = DriftTracker(window=4)
        tracker.observe([0.1, 0.2], [False, False], block_number=3)
        report = tracker.observe([0.3, 0.4], [False, False], block_number=5)[0]
        assert (report.start_block, report.end_block) == (3, 5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DriftTracker().observe([0.1], [], block_number=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftTracker(window=1)
        with pytest.raises(ValueError):
            DriftTracker(alpha=0.0)


class TestMonitorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"confirmations": -1},
            {"poll_blocks": 0},
            {"start_block": -1},
            {"drift_window": 1},
            {"drift_alpha": 1.0},
            {"latency_window": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MonitorConfig(**kwargs)

    def test_from_scale_reads_monitor_knobs(self):
        scale = Scale(
            monitor_confirmations=5,
            monitor_poll_blocks=16,
            monitor_drift_window=128,
            monitor_drift_alpha=0.01,
            monitor_start_block=100,
            monitor_latency_window=256,
            monitor_known_contracts=64,
        )
        config = MonitorConfig.from_scale(scale)
        assert config.confirmations == 5
        assert config.poll_blocks == 16
        assert config.drift_window == 128
        assert config.drift_alpha == 0.01
        assert config.start_block == 100
        assert config.latency_window == 256
        assert config.known_contracts == 64


class TestMonitorPipeline:
    def test_run_scans_confirmed_chain(self, service, node, monitor_config):
        pipeline = MonitorPipeline(service, node, config=monitor_config)
        stats = pipeline.run()
        assert stats.blocks_scanned == 30  # head 31 minus 2 confirmations, +genesis
        assert stats.next_block == 30
        assert stats.contracts_scanned == sum(
            len(node.get_block(n).transactions) for n in range(30)
        )
        assert stats.windows == 6  # 30 blocks in windows of 5
        assert stats.reorgs_detected == 0

    def test_alerts_deterministic_and_ordered(self, fitted_detector, node, monitor_config):
        def run_once():
            with ScoringService(fitted_detector, node=node) as service:
                pipeline = MonitorPipeline(service, node, config=monitor_config)
                pipeline.run()
                return pipeline.sink.alerts

        first, second = run_once(), run_once()
        assert first == second
        assert len(first) > 0
        blocks = [alert.block_number for alert in first]
        assert blocks == sorted(blocks)

    def test_alerts_flag_true_phishing_mostly(self, service, node, monitor_config):
        pipeline = MonitorPipeline(service, node, config=monitor_config)
        stats = pipeline.run()
        truth = {
            tx.contract_address: tx.is_phishing
            for n in range(stats.blocks_scanned)
            for tx in node.get_block(n).transactions
        }
        flagged = [truth[a.contract_address] for a in pipeline.sink.alerts]
        # The detector is imperfect but far better than chance.
        assert np.mean(flagged) > 0.6

    def test_max_blocks_caps_exactly(self, service, node, monitor_config):
        pipeline = MonitorPipeline(service, node, config=monitor_config)
        stats = pipeline.run(max_blocks=7)
        assert stats.blocks_scanned == 7
        assert stats.next_block == 7
        # Windows clamp to the cap: 5 + 2.
        assert stats.windows == 2

    def test_run_is_incremental(self, service, node, monitor_config):
        pipeline = MonitorPipeline(service, node, config=monitor_config)
        pipeline.run(max_blocks=7)
        stats = pipeline.run()
        assert stats.blocks_scanned == 30
        assert pipeline.run().blocks_scanned == 30  # chain exhausted, no-op

    def test_checkpoint_written_per_window(self, service, node, monitor_config, tmp_path):
        checkpoint = Checkpoint(tmp_path / "cursor.json")
        pipeline = MonitorPipeline(service, node, config=monitor_config, checkpoint=checkpoint)
        pipeline.run(max_blocks=5)
        cursor = checkpoint.load().cursor
        assert cursor.next_block == 5
        assert cursor.last_hash == node.get_block(4).block_hash
        assert cursor.blocks_scanned == 5

    def test_counters_cumulative_across_resume(
        self, service, node, monitor_config, tmp_path
    ):
        checkpoint = Checkpoint(tmp_path / "cursor.json")
        MonitorPipeline(
            service, node, config=monitor_config, checkpoint=checkpoint
        ).run(max_blocks=10)
        resumed = MonitorPipeline(
            service, node, config=monitor_config, checkpoint=checkpoint
        )
        assert resumed.resumed
        stats = resumed.run()
        assert stats.blocks_scanned == 30
        assert stats.next_block == 30

    def test_latency_and_drift_telemetry(self, service, node, monitor_config):
        pipeline = MonitorPipeline(service, node, config=monitor_config)
        stats = pipeline.run()
        assert stats.block_latency_ms_p50 > 0.0
        assert stats.block_latency_ms_p95 >= stats.block_latency_ms_p50
        assert stats.block_latency_ms_p99 >= stats.block_latency_ms_p95
        assert stats.drift_windows == len(pipeline.drift_windows)
        assert stats.drift_windows >= 1
        assert stats.alert_rate == pytest.approx(
            stats.alerts_emitted / stats.contracts_scanned
        )

    def test_service_telemetry_embedded(self, service, node, monitor_config):
        pipeline = MonitorPipeline(service, node, config=monitor_config)
        stats = pipeline.run()
        assert stats.service.requests == stats.contracts_scanned
        # Re-monitoring the same chain is pure verdict-cache traffic.
        rerun = MonitorPipeline(service, node, config=monitor_config)
        rerun_stats = rerun.run()
        assert rerun_stats.service.kernel_passes == stats.service.kernel_passes
        assert rerun_stats.service.verdict_hit_rate > 0.5

    def test_custom_sink_receives_alerts(self, service, node, monitor_config):
        sink = ListSink()
        pipeline = MonitorPipeline(service, node, config=monitor_config, sink=sink)
        pipeline.run()
        assert sink.alerts
        assert all(isinstance(alert, Alert) for alert in sink.alerts)

    def test_jsonl_sink_round_trips(self, service, node, monitor_config, tmp_path):
        path = tmp_path / "alerts" / "stream.jsonl"
        sink = JsonlSink(path)
        pipeline = MonitorPipeline(service, node, config=monitor_config, sink=sink)
        pipeline.run()
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == pipeline.stats().alerts_emitted
        first = json.loads(lines[0])
        assert set(first) == {
            "block_number", "contract_address", "tx_hash", "probability",
            "threshold", "chain_id", "static_findings",
        }

    def test_structured_jsonl_sink_stamps_event_envelope(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, structured=True)
        trace = obs_trace.new_trace(trace_id="feedc0de00000001")
        with obs_trace.activate(trace):
            sink.emit(
                Alert(
                    block_number=7,
                    contract_address="0x" + "ab" * 20,
                    tx_hash="0x" + "01" * 32,
                    probability=0.91,
                    threshold=0.5,
                    chain_id=1337,
                )
            )
            sink.emit(
                ImpersonationAlert(
                    chain_id=1337,
                    block_number=8,
                    tx_hash="0x" + "02" * 32,
                    contract_address="0x" + "cd" * 20,
                    impersonated_address="0x" + "ef" * 20,
                    matched_prefix="cdcd",
                    matched_suffix="cdcd",
                )
            )
        sink.close()
        first, second = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert first["event"] == "Alert"
        assert second["event"] == "ImpersonationAlert"
        assert first["trace_id"] == second["trace_id"] == "feedc0de00000001"
        assert first["chain_id"] == second["chain_id"] == 1337
        # The alert's own fields still round-trip inside the envelope.
        assert first["probability"] == 0.91
        assert second["impersonated_address"] == "0x" + "ef" * 20

    def test_structured_sink_through_pipeline_run(
        self, service, node, monitor_config, tmp_path
    ):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, structured=True)
        pipeline = MonitorPipeline(service, node, config=monitor_config, sink=sink)
        pipeline.run()
        sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(lines) == pipeline.stats().alerts_emitted
        # Each processed window runs under its own trace, so every emitted
        # event carries a joinable trace id.
        assert all(record["event"] == "Alert" for record in lines)
        assert all(record["trace_id"] for record in lines)

    def test_default_jsonl_sink_shape_unchanged_by_structured_mode(
        self, service, node, monitor_config, tmp_path
    ):
        sink = JsonlSink(tmp_path / "plain.jsonl")
        assert sink.structured is False

    def test_negative_max_blocks_rejected(self, service, node, monitor_config):
        with pytest.raises(ValueError):
            MonitorPipeline(service, node, config=monitor_config).run(max_blocks=-1)

    def test_empty_chain_terminates_cleanly(self, service, monitor_config):
        empty = SimulatedEthereumNode(latest_block=0)
        pipeline = MonitorPipeline(service, empty, config=monitor_config)
        # latest_block=0 with confirmations=2 means nothing is confirmed.
        stats = pipeline.run()
        assert stats.blocks_scanned == 0
        assert stats.windows == 0
