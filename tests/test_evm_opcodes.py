"""Tests for the Shanghai opcode registry (Table I)."""

import math

import pytest

from repro.evm.opcodes import (
    CANONICAL_MNEMONICS,
    OPCODES_BY_MNEMONIC,
    SHANGHAI_OPCODE_COUNT,
    SHANGHAI_OPCODES,
    OpcodeCategory,
    get_mnemonic,
    get_opcode,
    is_defined,
    iter_opcodes,
    opcode_table_rows,
)


class TestRegistryShape:
    def test_shanghai_has_144_opcodes(self):
        assert SHANGHAI_OPCODE_COUNT == 144

    def test_registry_and_mnemonic_index_agree(self):
        assert len(OPCODES_BY_MNEMONIC) == len(SHANGHAI_OPCODES)

    def test_canonical_mnemonics_sorted_by_byte_value(self):
        values = [OPCODES_BY_MNEMONIC[m].value for m in CANONICAL_MNEMONICS]
        assert values == sorted(values)

    def test_iteration_order_is_by_value(self):
        values = [info.value for info in iter_opcodes()]
        assert values == sorted(values)

    def test_all_byte_values_unique(self):
        assert len({info.value for info in SHANGHAI_OPCODES.values()}) == 144


class TestKnownOpcodes:
    @pytest.mark.parametrize(
        "value,name,gas",
        [
            (0x00, "STOP", 0),
            (0x01, "ADD", 3),
            (0x02, "MUL", 5),
            (0xFD, "REVERT", 0),
            (0xFF, "SELFDESTRUCT", 5000),
            (0x5F, "PUSH0", 2),
            (0x20, "SHA3", 30),
            (0x54, "SLOAD", 100),
            (0xF4, "DELEGATECALL", 100),
        ],
    )
    def test_table1_rows(self, value, name, gas):
        info = get_opcode(value)
        assert info is not None
        assert info.mnemonic == name
        assert info.gas == gas

    def test_invalid_opcode_has_nan_gas(self):
        assert get_opcode(0xFE).gas is None

    def test_push_family_has_operands(self):
        for width in range(1, 33):
            info = get_mnemonic(f"PUSH{width}")
            assert info.operand_size == width
            assert info.is_push

    def test_push0_is_push_without_operand_bytes(self):
        info = get_mnemonic("PUSH0")
        assert info.operand_size == 0
        assert info.is_push

    def test_dup_and_swap_ranges(self):
        for depth in range(1, 17):
            assert get_mnemonic(f"DUP{depth}").value == 0x7F + depth
            assert get_mnemonic(f"SWAP{depth}").value == 0x8F + depth

    def test_log_gas_scales_with_topics(self):
        costs = [get_mnemonic(f"LOG{i}").gas for i in range(5)]
        assert costs == [375, 750, 1125, 1500, 1875]

    def test_terminators(self):
        for name in ("STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT"):
            assert get_mnemonic(name).is_terminator
        assert not get_mnemonic("ADD").is_terminator


class TestLookups:
    def test_get_opcode_unknown_returns_none(self):
        assert get_opcode(0x0C) is None
        assert get_opcode(0xEF) is None

    def test_is_defined(self):
        assert is_defined(0x01)
        assert not is_defined(0x0C)

    def test_get_mnemonic_is_case_insensitive(self):
        assert get_mnemonic("mstore").value == 0x52

    def test_get_mnemonic_unknown_raises(self):
        with pytest.raises(KeyError):
            get_mnemonic("NOTANOPCODE")

    def test_categories_cover_registry(self):
        categories = {info.category for info in SHANGHAI_OPCODES.values()}
        assert OpcodeCategory.PUSH in categories
        assert OpcodeCategory.SYSTEM in categories
        assert all(isinstance(c, OpcodeCategory) for c in categories)


class TestTableRows:
    def test_row_count_matches_registry(self):
        assert len(opcode_table_rows()) == 144

    def test_rows_have_expected_fields(self):
        row = opcode_table_rows()[0]
        assert set(row) == {"opcode", "name", "gas", "description"}
        assert row["opcode"] == "0x00"
        assert row["name"] == "STOP"

    def test_invalid_row_gas_is_nan(self):
        rows = {row["name"]: row for row in opcode_table_rows()}
        assert math.isnan(rows["INVALID"]["gas"])
