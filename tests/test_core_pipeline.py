"""Tests for the framework core: BEM, BDM, dataset construction, MEM, PAM."""

import numpy as np
import pytest

from repro.chain.contracts import DeploymentMonth
from repro.core.bdm import BytecodeDisassemblerModule
from repro.core.bem import BytecodeExtractionModule
from repro.core.config import Scale
from repro.core.dataset import PhishingDataset, build_temporal_split
from repro.core.mem import ModelEvaluationModule
from repro.core.pam import PostHocAnalysisModule
from repro.core.results import EvaluationSuite, render_table, render_table2


class TestBEM:
    def test_extraction_matches_corpus(self, corpus):
        bem = BytecodeExtractionModule.from_corpus(corpus)
        records = bem.extract()
        assert len(records) == len(corpus.records)
        assert bem.report.extracted == len(records)
        assert bem.report.labeled_phishing == len(corpus.phishing)

    def test_extraction_respects_window(self, corpus):
        bem = BytecodeExtractionModule.from_corpus(corpus)
        records = bem.extract(start=DeploymentMonth(2024, 6), end=DeploymentMonth(2024, 8))
        assert all(DeploymentMonth(2024, 6) <= r.deployed_month for r in records)
        assert all(r.deployed_month <= DeploymentMonth(2024, 8) for r in records)

    def test_extraction_limit(self, corpus):
        bem = BytecodeExtractionModule.from_corpus(corpus)
        records = bem.extract(limit=25)
        assert len(records) == 25

    def test_labels_match_ground_truth(self, corpus):
        bem = BytecodeExtractionModule.from_corpus(corpus)
        truth = {r.address.lower(): r.label for r in corpus.records}
        for record in bem.extract(limit=40):
            assert record.label is truth[record.address.lower()]


class TestBDM:
    def test_disassembles_records(self, corpus):
        bdm = BytecodeDisassemblerModule()
        contracts = bdm.disassemble_many(corpus.records[:5])
        assert len(contracts) == 5
        assert all(len(contract.instructions) > 0 for contract in contracts)

    def test_csv_roundtrip(self, corpus, tmp_path):
        bdm = BytecodeDisassemblerModule()
        contracts = bdm.disassemble_many(corpus.records[:4])
        path = tmp_path / "bdm" / "instructions.csv"
        written = bdm.export_csv(contracts, path)
        assert written == sum(len(c.instructions) for c in contracts)
        loaded = bdm.load_csv(path)
        assert set(loaded) == {c.address for c in contracts}
        first = contracts[0]
        assert [row["mnemonic"] for row in loaded[first.address]] == first.mnemonics


class TestDatasetConstruction:
    def test_balanced_and_deduplicated(self, corpus):
        dataset = PhishingDataset.build(corpus.records, seed=0)
        assert dataset.phishing_fraction == pytest.approx(0.5)
        hashes = [record.code_hash for record in dataset.records]
        assert len(hashes) == len(set(hashes))

    def test_target_size_respected(self, corpus):
        dataset = PhishingDataset.build(corpus.records, target_size=60, seed=0)
        assert len(dataset) == 60

    def test_requires_both_classes(self, corpus):
        phishing_only = [r for r in corpus.records if r.is_phishing]
        with pytest.raises(ValueError):
            PhishingDataset.build(phishing_only)

    def test_split_fraction_stratified(self, dataset):
        third = dataset.split_fraction(1 / 3, seed=0)
        assert abs(len(third) - len(dataset) / 3) <= 2
        assert abs(third.phishing_fraction - 0.5) < 0.1

    def test_split_fraction_full_is_copy(self, dataset):
        full = dataset.split_fraction(1.0)
        assert len(full) == len(dataset)

    def test_split_fraction_invalid(self, dataset):
        with pytest.raises(ValueError):
            dataset.split_fraction(0.0)

    def test_subset_ordering(self, dataset):
        subset = dataset.subset([2, 0, 1])
        assert subset.records[0] is dataset.records[2]

    def test_monthly_phishing_counts_totals(self, dataset):
        counts = dataset.monthly_phishing_counts()
        assert sum(counts.values()) == int(dataset.labels.sum())


class TestTemporalSplit:
    def test_windows_do_not_overlap_training(self, corpus):
        split = build_temporal_split(corpus.records, seed=0)
        train_end = DeploymentMonth(2024, 1)
        assert all(r.deployed_month <= train_end for r in split.train.records)
        for period, period_dataset in split.test_periods:
            month = DeploymentMonth.parse(period)
            assert train_end < month
            assert all(r.deployed_month == month for r in period_dataset.records)

    def test_each_window_is_balanced(self, corpus):
        split = build_temporal_split(corpus.records, seed=0)
        for _, period_dataset in split.test_periods:
            assert period_dataset.phishing_fraction == pytest.approx(0.5)

    def test_has_up_to_nine_periods(self, corpus):
        split = build_temporal_split(corpus.records, seed=0)
        assert 1 <= split.n_periods <= 9


class TestMEMAndPAM:
    @pytest.fixture(scope="class")
    def suite(self, dataset, smoke_scale) -> EvaluationSuite:
        mem = ModelEvaluationModule(scale=smoke_scale)
        return mem.evaluate_suite(["Random Forest", "Logistic Regression", "k-NN"], dataset)

    def test_suite_contains_requested_models(self, suite):
        assert suite.model_names() == ["Random Forest", "Logistic Regression", "k-NN"]

    def test_fold_counts_follow_scale(self, suite, smoke_scale):
        expected = smoke_scale.n_folds * smoke_scale.n_runs
        assert all(len(evaluation.cv_result.folds) == expected for evaluation in suite)

    def test_metrics_in_unit_interval(self, suite):
        for evaluation in suite:
            for metric in ("accuracy", "f1", "precision", "recall"):
                assert 0.0 <= evaluation.mean(metric) <= 1.0

    def test_best_model_and_category_means(self, suite):
        best = suite.best_model("accuracy")
        assert best.model_name in suite.model_names()
        means = suite.category_means("accuracy")
        assert "histogram" in means

    def test_metric_matrix_shape(self, suite, smoke_scale):
        matrix = suite.metric_matrix("accuracy")
        assert matrix.shape == (smoke_scale.n_folds * smoke_scale.n_runs, 3)

    def test_get_unknown_model(self, suite):
        with pytest.raises(KeyError):
            suite.get("GPT-2a")

    def test_render_table2(self, suite):
        text = render_table2(suite)
        assert "Random Forest" in text
        assert "Accuracy (%)" in text

    def test_render_table_empty(self):
        assert render_table([]) == "(empty table)"

    def test_pam_report_structure(self, suite):
        report = PostHocAnalysisModule().analyze(suite)
        assert report.n_model_metric_pairs == 3 * 4
        assert set(report.kruskal) == {"accuracy", "f1", "precision", "recall"}
        assert len(report.table3_rows()) == 4
        for metric, result in report.dunn.items():
            assert len(result.pairs) == 3
        assert set(report.breakdown) == {"accuracy", "f1", "precision", "recall"}

    def test_fit_and_score_outcome_fields(self, dataset, smoke_scale):
        mem = ModelEvaluationModule(scale=smoke_scale)
        train = dataset.subset(range(0, len(dataset), 2))
        test = dataset.subset(range(1, len(dataset), 2))
        outcome = mem.fit_and_score("Random Forest", train, test, seed=0)
        assert {"accuracy", "f1", "precision", "recall", "train_time", "inference_time"} <= set(outcome)
        assert outcome["n_train"] == len(train)


class TestScaleConfig:
    def test_presets_exist(self):
        assert Scale.smoke().n_folds <= Scale.ci().n_folds <= Scale.paper().n_folds

    def test_paper_matches_paper_protocol(self):
        paper = Scale.paper()
        assert paper.n_folds == 10
        assert paper.n_runs == 3
        assert paper.dataset_size == 7000

    def test_folds_for_deep_models_reduced_outside_paper(self):
        ci = Scale.ci()
        assert ci.folds_for("histogram") == (ci.n_folds, ci.n_runs)
        assert ci.folds_for("language") == (ci.deep_folds, ci.deep_runs)
        paper = Scale.paper()
        assert paper.folds_for("language") == (paper.n_folds, paper.n_runs)
