"""Equivalence tests: the vectorized opcode kernel vs. the disassembler.

The fast path must count exactly what ``Counter(Disassembler().mnemonics(bc))``
counts, for every bytecode — including truncated PUSH tails, undefined
opcodes, and empty inputs.  ~200 seeded random bytecodes exercise the
property; targeted cases pin the tricky edges.
"""

from collections import Counter

import numpy as np
import pytest

from repro.evm.disassembler import Disassembler
from repro.evm.errors import BytecodeFormatError
from repro.evm.fastcount import (
    BIN_MNEMONICS,
    INVALID_BIN,
    MNEMONIC_BINS,
    bins_for_mnemonics,
    count_batch,
    count_many,
    count_opcodes,
    instruction_count,
    mnemonic_counts,
    observed_mnemonics,
)
from repro.evm.opcodes import SHANGHAI_OPCODES


def legacy_counts(bytecode) -> dict:
    return dict(Counter(Disassembler().mnemonics(bytecode)))


def random_bytecodes(n_cases: int = 200, seed: int = 20250726):
    """Seeded random bytecodes biased towards the awkward encodings."""
    rng = np.random.default_rng(seed)
    cases = []
    for index in range(n_cases):
        kind = index % 4
        length = int(rng.integers(0, 300))
        if kind == 0:
            # Uniform bytes: plenty of undefined opcodes and accidental PUSHes.
            body = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
        elif kind == 1:
            # PUSH-heavy: immediates frequently contain push-valued bytes.
            body = rng.integers(0x60, 0x80, size=length, dtype=np.uint8).tobytes()
        elif kind == 2:
            # Undefined-heavy: gaps of the Shanghai registry.
            body = rng.integers(0x0C, 0x10, size=length, dtype=np.uint8).tobytes()
        else:
            # Valid-looking code with a truncated PUSH tail.
            body = rng.integers(0, 0x60, size=length, dtype=np.uint8).tobytes()
            width = int(rng.integers(1, 33))
            tail = int(rng.integers(0, width))
            body += bytes([0x5F + width]) + bytes(tail)
        cases.append(body)
    return cases


class TestKernelEquivalence:
    def test_matches_disassembler_on_random_bytecodes(self):
        for bytecode in random_bytecodes():
            assert mnemonic_counts(bytecode) == legacy_counts(bytecode)

    def test_batch_matches_single(self):
        codes = random_bytecodes(80, seed=7)
        matrix = count_batch(codes)
        assert matrix.shape == (len(codes), 256)
        for row, code in enumerate(codes):
            assert np.array_equal(matrix[row], count_opcodes(code))

    def test_empty_inputs(self):
        for empty in (b"", "", "0x", "0X"):
            counts = count_opcodes(empty)
            assert counts.shape == (256,)
            assert counts.sum() == 0
            assert mnemonic_counts(empty) == {}

    def test_hex_string_input(self):
        assert mnemonic_counts("0x6080604052") == legacy_counts("0x6080604052")

    def test_malformed_hex_raises(self):
        with pytest.raises(BytecodeFormatError):
            count_opcodes("0x123")

    def test_truncated_push_counts_once(self):
        # PUSH32 with only 3 immediate bytes: one PUSH32, nothing else.
        code = bytes([0x7F, 0x60, 0x60, 0x60])
        assert mnemonic_counts(code) == {"PUSH32": 1}
        assert mnemonic_counts(code) == legacy_counts(code)

    def test_push_immediates_are_skipped(self):
        # PUSH1 0x60: the immediate is push-valued but must not be counted.
        code = bytes([0x60, 0x60, 0x00])
        assert mnemonic_counts(code) == {"PUSH1": 1, "STOP": 1}

    def test_undefined_bytes_fold_into_invalid(self):
        code = bytes([0x0C, 0x0D, 0xFE, 0xEF])
        counts = count_opcodes(code)
        assert counts[INVALID_BIN] == 4
        assert counts.sum() == 4
        assert mnemonic_counts(code) == {"INVALID": 4}

    def test_every_single_byte_value(self):
        for value in range(256):
            code = bytes([value])
            assert mnemonic_counts(code) == legacy_counts(code), hex(value)

    def test_instruction_count_matches_mnemonic_length(self):
        for bytecode in random_bytecodes(40, seed=3):
            assert instruction_count(bytecode) == len(Disassembler().mnemonics(bytecode))

    def test_dtype_and_shape(self):
        counts = count_opcodes(bytes([0x60, 0x01, 0x00]))
        assert counts.dtype == np.int64
        assert counts.shape == (256,)


class TestHelpers:
    def test_count_many_accepts_hex_and_bytes(self):
        matrix = count_many(["0x6001", bytes([0x60, 0x01])])
        assert matrix.shape == (2, 256)
        assert np.array_equal(matrix[0], matrix[1])

    def test_count_many_empty(self):
        assert count_many([]).shape == (0, 256)

    def test_bin_maps_are_inverse(self):
        for value, info in SHANGHAI_OPCODES.items():
            assert BIN_MNEMONICS[value] == info.mnemonic
            assert MNEMONIC_BINS[info.mnemonic] == value

    def test_bins_for_mnemonics_unknown(self):
        bins = bins_for_mnemonics(["PUSH1", "NOT_AN_OPCODE", "STOP"])
        assert bins[0] == 0x60
        assert bins[1] == -1
        assert bins[2] == 0x00

    def test_observed_mnemonics_sorted_union(self):
        matrix = count_many([bytes([0x60, 0x01, 0x00]), bytes([0x01, 0x02])])
        assert observed_mnemonics(matrix) == ["ADD", "MUL", "PUSH1", "STOP"]


class TestBufferKernels:
    """The packed span-path kernels vs. the per-code batch kernels.

    ``sequence_buffer``/``count_buffer`` are what blob-span workers run over
    memmap views; they must be bit-identical to ``sequence_batch``/
    ``count_batch`` on the equivalent bytes list, or the zero-copy corpus
    plane would silently change features.
    """

    @staticmethod
    def _pack(codes):
        from repro.evm.fastcount import sequence_buffer

        buffer = np.frombuffer(b"".join(codes), dtype=np.uint8)
        lengths = np.array([len(code) for code in codes], dtype=np.int64)
        return sequence_buffer(buffer, lengths)

    def test_sequence_buffer_matches_sequence_batch(self):
        from repro.evm.fastcount import sequence_batch

        codes = random_bytecodes(120, seed=11)
        expected = sequence_batch(codes)
        split = self._pack(codes).split()
        assert len(split) == len(expected)
        for got, want in zip(split, expected):
            assert np.array_equal(got.opcodes, want.opcodes)
            assert np.array_equal(got.widths, want.widths)
            assert got.opcodes.dtype == want.opcodes.dtype
            assert got.widths.dtype == want.widths.dtype

    def test_count_buffer_matches_count_batch(self):
        from repro.evm.fastcount import count_buffer

        codes = random_bytecodes(120, seed=12)
        buffer = np.frombuffer(b"".join(codes), dtype=np.uint8)
        lengths = np.array([len(code) for code in codes], dtype=np.int64)
        assert np.array_equal(count_buffer(buffer, lengths), count_batch(codes))

    def test_packed_counts_match_per_sequence_counts(self):
        codes = random_bytecodes(60, seed=13)
        packed = self._pack(codes)
        matrix = packed.counts()
        for row, sequence in zip(matrix, packed.split()):
            assert np.array_equal(row, sequence.counts())

    def test_edge_cases(self):
        from repro.evm.fastcount import sequence_batch

        cases = [
            [],
            [b""],
            [b"", b"", b""],
            [bytes([0x7F])],                      # truncated PUSH32, no data
            [bytes([0x60])],                      # truncated PUSH1
            [bytes(range(256))],
            [b"", bytes([0x60, 0x61]), b"", bytes([0x00])],
        ]
        for codes in cases:
            expected = sequence_batch(codes)
            split = self._pack(codes).split()
            for got, want in zip(split, expected):
                assert np.array_equal(got.opcodes, want.opcodes), codes
                assert np.array_equal(got.widths, want.widths), codes

    def test_memmap_views_accepted(self, tmp_path):
        from repro.evm.fastcount import count_buffer, sequence_batch, sequence_buffer

        codes = random_bytecodes(30, seed=14)
        blob = tmp_path / "codes.bin"
        blob.write_bytes(b"".join(codes))
        mapped = np.memmap(blob, dtype=np.uint8, mode="r")
        lengths = np.array([len(code) for code in codes], dtype=np.int64)
        expected = sequence_batch(codes)
        for got, want in zip(sequence_buffer(mapped, lengths).split(), expected):
            assert np.array_equal(got.opcodes, want.opcodes)
        assert np.array_equal(count_buffer(mapped, lengths), count_batch(codes))

    def test_length_mismatch_rejected(self):
        from repro.evm.fastcount import count_buffer, sequence_buffer

        buffer = np.zeros(10, dtype=np.uint8)
        lengths = np.array([4, 4], dtype=np.int64)
        with pytest.raises(ValueError):
            sequence_buffer(buffer, lengths)
        with pytest.raises(ValueError):
            count_buffer(buffer, lengths)
