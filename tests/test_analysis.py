"""Tests for ``repro.analysis``: lint rules, analyzer caching, integrations.

The per-family matrix pins the headline acceptance criteria: every
``chain.templates`` family round-trips through :func:`analyze_cfg` with all
jumps resolved, benign families never produce a HIGH finding, and each
phishing family (with its signature fragment forced into the mix) triggers
the expected rule.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import numpy as np
import pytest

from repro.analysis import (
    AnalysisConfig,
    AnalysisReport,
    DEFAULT_RULES,
    Finding,
    RULES,
    Severity,
    StaticAnalyzer,
)
from repro.chain import templates
from repro.chain.blocks import BlockStream, BlockStreamConfig
from repro.chain.rpc import SimulatedEthereumNode
from repro.core.config import Scale
from repro.evm import analyze_cfg
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor import MonitorConfig, MonitorPipeline, JsonlSink
from repro.serving import ScoringService, ServingConfig

NON_PROXY_BENIGN = [f for f in templates.BENIGN_FAMILIES if not f.is_proxy]
NON_PROXY_PHISHING = [f for f in templates.PHISHING_FAMILIES if not f.is_proxy]
FAMILY_BY_NAME = {f.name: f for f in templates.ALL_FAMILIES}


def build(name, rng, mix_bias=None):
    return templates.build_family_bytecode(
        FAMILY_BY_NAME[name], rng, mix_bias=mix_bias
    )


#: (family, forced fragment, rule the fragment must trigger).
SIGNATURE_RULES = [
    ("sweeper_backdoor", "selfdestruct", "reachable-selfdestruct"),
    ("approval_drainer", "approval_harvest", "approval-drain"),
    ("counterfeit_token", "hidden_redirect", "hidden-redirect"),
    ("fake_airdrop", "selfbalance_sweep", "balance-sweep"),
]


@pytest.fixture(scope="module")
def analyzer():
    return StaticAnalyzer(features=BatchFeatureService())


# ---------------------------------------------------------------------------
# per-family matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", [f.name for f in NON_PROXY_BENIGN])
def test_benign_family_has_no_high_findings(analyzer, family):
    for seed in range(4):
        rng = np.random.default_rng(seed)
        code = build(family, rng)
        report = analyzer.analyze(code)
        assert report.max_severity() < Severity.HIGH, (family, seed, report.findings)
        assert report.metrics.unresolved_jumps == 0


@pytest.mark.parametrize("family,fragment,rule_name", SIGNATURE_RULES)
def test_phishing_family_triggers_signature_rule(analyzer, family, fragment, rule_name):
    for seed in range(4):
        rng = np.random.default_rng(seed)
        code = build(family, rng, mix_bias={fragment: 50.0})
        report = analyzer.analyze(code)
        assert report.has(rule_name), (family, seed, report.findings)
        assert report.max_severity() >= Severity.HIGH
        assert report.metrics.unresolved_jumps == 0


def test_proxy_families_flag_delegatecall_forward(analyzer):
    report = analyzer.analyze(templates.minimal_proxy_bytecode("0x" + "22" * 20))
    assert report.has("delegatecall-forward")
    assert report.max_severity() == Severity.MEDIUM


@pytest.mark.parametrize(
    "family", [f.name for f in NON_PROXY_BENIGN + NON_PROXY_PHISHING]
)
def test_every_family_resolves_all_jumps(family):
    for seed in range(3):
        rng = np.random.default_rng(seed)
        code = build(family, rng)
        assert analyze_cfg(code).metrics.unresolved_jumps == 0


# ---------------------------------------------------------------------------
# proxy implementation resolution
# ---------------------------------------------------------------------------


def test_proxy_resolution_lifts_implementation_findings():
    impl_address = "0x" + "ab" * 20
    rng = np.random.default_rng(0)
    impl_code = build(
        "sweeper_backdoor", rng, mix_bias={"selfdestruct": 50.0}
    )

    calls = []

    def resolver(address):
        calls.append(address)
        return impl_code if address == impl_address else b""

    analyzer = StaticAnalyzer(
        features=BatchFeatureService(), code_resolver=resolver
    )
    report = analyzer.analyze(templates.minimal_proxy_bytecode(impl_address))
    assert calls == [impl_address]
    assert report.resolved_implementations == (impl_address,)
    lifted = report.by_rule("reachable-selfdestruct")
    assert lifted and all(f.address == impl_address for f in lifted)
    assert all(f.message.startswith("[impl ") for f in lifted)
    assert report.max_severity() == Severity.HIGH
    assert analyzer.stats().proxy_resolutions == 1


def test_proxy_resolution_survives_resolver_errors():
    def resolver(address):
        raise ConnectionError("node down")

    analyzer = StaticAnalyzer(
        features=BatchFeatureService(), code_resolver=resolver
    )
    report = analyzer.analyze(templates.minimal_proxy_bytecode("0x" + "cd" * 20))
    assert report.has("delegatecall-forward")
    assert report.resolved_implementations == ()


def test_proxy_resolution_uses_simulated_node_get_code():
    node = SimulatedEthereumNode()
    node.mine(BlockStream(BlockStreamConfig(seed=5, deploys_per_block=2.0)), 8)
    analyzer = StaticAnalyzer(
        features=BatchFeatureService(), code_resolver=node.get_code
    )
    # Proxies minted by the stream point at deployed implementations.
    deployed = [
        tx
        for n in range(node.block_number() + 1)
        for tx in node.get_block(n).transactions
    ]
    proxies = [
        tx.bytecode
        for tx in deployed
        if analyze_cfg(tx.bytecode).metrics.delegatecalls > 0
        and len(tx.bytecode) < 64
    ]
    for code in proxies:
        report = analyzer.analyze(code)
        assert report.has("delegatecall-forward")


# ---------------------------------------------------------------------------
# analyzer caching + batch path
# ---------------------------------------------------------------------------


def test_report_cache_hits_on_repeat_analysis():
    analyzer = StaticAnalyzer(features=BatchFeatureService())
    rng = np.random.default_rng(7)
    code = build("erc20_token", rng)
    first = analyzer.analyze(code)
    second = analyzer.analyze(code)
    assert first is second
    stats = analyzer.stats()
    assert stats.analyses == 1  # one fresh analysis; the repeat was a hit
    assert stats.cache_hits == 1
    assert stats.cache_misses == 1
    assert stats.hit_rate == 0.5
    analyzer.cache_clear()
    analyzer.analyze(code)
    assert analyzer.stats().cache_misses == 2


def test_report_cache_evicts_at_capacity():
    analyzer = StaticAnalyzer(
        config=AnalysisConfig(report_cache=2), features=BatchFeatureService()
    )
    codes = [
        build("erc20_token", np.random.default_rng(seed))
        for seed in range(3)
    ]
    for code in codes:
        analyzer.analyze(code)
    analyzer.analyze(codes[0])  # evicted by the third insert
    assert analyzer.stats().cache_misses == 4


def test_analyze_many_matches_analyze(bytecodes):
    subset = list(bytecodes[:12])
    batch = StaticAnalyzer(features=BatchFeatureService())
    single = StaticAnalyzer(features=BatchFeatureService())
    reports = batch.analyze_many(subset)
    assert len(reports) == len(subset)
    for code, report in zip(subset, reports):
        expected = single.analyze(code)
        assert report.to_dict() == expected.to_dict()


def test_analysis_config_from_scale():
    config = AnalysisConfig.from_scale(Scale.smoke())
    assert config.report_cache == Scale.smoke().analysis_report_cache
    assert config.proxy_depth == Scale.smoke().analysis_proxy_depth
    assert config.dead_ratio == Scale.smoke().analysis_dead_ratio
    assert config.max_findings == Scale.smoke().analysis_max_findings


def test_default_rules_registry_is_complete():
    assert set(DEFAULT_RULES) == set(RULES)
    expected = {
        "reachable-selfdestruct",
        "balance-sweep",
        "approval-drain",
        "hidden-redirect",
        "delegatecall-forward",
        "owner-gated-guard",
        "timestamp-gate",
        "unresolved-jump",
        "dead-code",
    }
    assert expected <= set(RULES)


def test_rule_subset_restricts_findings():
    rng = np.random.default_rng(0)
    code = build(
        "sweeper_backdoor", rng, mix_bias={"selfdestruct": 50.0}
    )
    analyzer = StaticAnalyzer(
        features=BatchFeatureService(), rules=("timestamp-gate",)
    )
    report = analyzer.analyze(code)
    assert not report.has("reachable-selfdestruct")
    assert all(f.rule == "timestamp-gate" for f in report.findings)


# ---------------------------------------------------------------------------
# report shape
# ---------------------------------------------------------------------------


def test_report_to_dict_is_json_serializable(analyzer):
    rng = np.random.default_rng(1)
    code = build(
        "approval_drainer", rng, mix_bias={"approval_harvest": 50.0}
    )
    payload = analyzer.analyze(code).to_dict()
    text = json.dumps(payload)
    decoded = json.loads(text)
    assert decoded["max_severity"] == "high"
    assert decoded["findings"], "expected at least one finding"
    finding = decoded["findings"][0]
    assert set(finding) >= {"rule", "severity", "pc", "message"}
    assert all(s.startswith("0x") and len(s) == 10 for s in decoded["selectors"])
    assert decoded["metrics"]["unresolved_jumps"] == 0


def test_severity_ordering():
    assert Severity.INFO < Severity.LOW < Severity.MEDIUM < Severity.HIGH
    empty = AnalysisReport(findings=(), metrics=analyze_cfg(b"").metrics)
    assert empty.max_severity() == Severity.INFO


def test_findings_sorted_by_severity_then_pc(analyzer):
    rng = np.random.default_rng(2)
    code = build(
        "sweeper_backdoor", rng, mix_bias={"selfdestruct": 50.0}
    )
    findings = analyzer.analyze(code).findings
    keys = [(-int(f.severity), f.pc, f.rule) for f in findings]
    assert keys == sorted(keys)


def test_max_findings_truncates():
    rng = np.random.default_rng(3)
    code = build("sweeper_backdoor", rng)
    analyzer = StaticAnalyzer(
        config=AnalysisConfig(max_findings=1), features=BatchFeatureService()
    )
    report = analyzer.analyze(code)
    assert len(report.findings) <= 1


# ---------------------------------------------------------------------------
# feature-service analysis view
# ---------------------------------------------------------------------------


def test_feature_service_analysis_view_caches(bytecodes):
    service = BatchFeatureService()
    subset = list(bytecodes[:8])
    matrix = service.analysis_matrix(subset)
    assert matrix.shape == (len(subset), 16)
    assert service.analysis_stats.misses == len(set(map(bytes, subset)))
    again = service.analysis_matrix(subset)
    np.testing.assert_array_equal(matrix, again)
    assert service.analysis_stats.misses == len(set(map(bytes, subset)))


def test_feature_service_analysis_view_persists(tmp_path, bytecodes):
    subset = list(bytecodes[:6])
    service = BatchFeatureService()
    matrix = service.analysis_matrix(subset)
    path = tmp_path / "cache.npz"
    service.save(path)
    fresh = BatchFeatureService()
    fresh.load(path)
    reloaded = fresh.analysis_matrix(subset)
    np.testing.assert_array_equal(matrix, reloaded)
    assert fresh.analysis_stats.misses == 0


# ---------------------------------------------------------------------------
# monitor integration
# ---------------------------------------------------------------------------


def test_monitor_alerts_carry_static_findings(tmp_path, dataset):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = BatchFeatureService()
    detector.fit(dataset.bytecodes, dataset.labels)
    node = SimulatedEthereumNode()
    node.mine(
        BlockStream(
            BlockStreamConfig(seed=23, deploys_per_block=2.0, phishing_share=0.5)
        ),
        16,
    )
    analyzer = StaticAnalyzer(
        features=BatchFeatureService(), code_resolver=node.get_code
    )
    sink_path = tmp_path / "alerts.jsonl"
    with ScoringService(
        detector, node=node, config=ServingConfig(max_wait_ms=0.0)
    ) as service:
        pipeline = MonitorPipeline(
            service,
            node,
            config=MonitorConfig(confirmations=2, poll_blocks=5),
            sink=JsonlSink(sink_path),
            analyzer=analyzer,
        )
        pipeline.run()
        pipeline.sink.close()
    lines = [json.loads(line) for line in sink_path.read_text().splitlines()]
    assert lines, "expected at least one alert"
    assert all("static_findings" in alert for alert in lines)
    decorated = [a for a in lines if a["static_findings"]]
    assert decorated, "expected at least one alert with static findings"
    finding = decorated[0]["static_findings"][0]
    assert finding["rule"] in RULES
    assert isinstance(finding["severity"], int)


def test_monitor_without_analyzer_emits_empty_findings(dataset):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = BatchFeatureService()
    detector.fit(dataset.bytecodes, dataset.labels)
    node = SimulatedEthereumNode()
    node.mine(
        BlockStream(
            BlockStreamConfig(seed=23, deploys_per_block=2.0, phishing_share=0.5)
        ),
        12,
    )
    with ScoringService(
        detector, node=node, config=ServingConfig(max_wait_ms=0.0)
    ) as service:
        pipeline = MonitorPipeline(
            service, node, config=MonitorConfig(confirmations=2, poll_blocks=5)
        )
        pipeline.run()
        alerts = pipeline.sink.alerts
    assert alerts
    assert all(alert.static_findings == () for alert in alerts)


def test_finding_asdict_roundtrip():
    finding = Finding(
        rule="reachable-selfdestruct",
        severity=Severity.HIGH,
        pc=42,
        message="SELFDESTRUCT reachable from dispatcher",
    )
    payload = asdict(finding)
    assert json.loads(json.dumps(payload))["pc"] == 42
    assert finding.to_dict()["severity"] == "high"
