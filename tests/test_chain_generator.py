"""Tests for the contract corpus generator."""

import numpy as np
import pytest

from repro.chain.contracts import ContractLabel, DeploymentMonth, unique_by_bytecode
from repro.chain.generator import ContractCorpusGenerator, CorpusConfig, generate_corpus


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(CorpusConfig(n_phishing=220, n_benign=140, seed=3))


class TestCorpusShape:
    def test_record_counts(self, small_corpus):
        assert len(small_corpus.phishing) == 220
        assert len(small_corpus.benign) == 140
        assert len(small_corpus.records) == 360

    def test_labels_consistent(self, small_corpus):
        assert all(r.label is ContractLabel.PHISHING for r in small_corpus.phishing)
        assert all(r.label is ContractLabel.BENIGN for r in small_corpus.benign)

    def test_addresses_unique(self, small_corpus):
        addresses = [r.address for r in small_corpus.records]
        assert len(addresses) == len(set(addresses))

    def test_deterministic_given_seed(self):
        config = CorpusConfig(n_phishing=60, n_benign=40, seed=9)
        first = generate_corpus(config)
        second = generate_corpus(config)
        assert [r.bytecode for r in first.records] == [r.bytecode for r in second.records]

    def test_different_seed_differs(self):
        first = generate_corpus(CorpusConfig(n_phishing=60, n_benign=40, seed=1))
        second = generate_corpus(CorpusConfig(n_phishing=60, n_benign=40, seed=2))
        assert [r.bytecode for r in first.records] != [r.bytecode for r in second.records]


class TestDuplicationStructure:
    def test_phishing_has_heavy_duplication(self, small_corpus):
        unique = unique_by_bytecode(small_corpus.phishing)
        # The paper observed 17,455 obtained vs 3,458 unique (~5x); the
        # synthetic corpus must reproduce a substantial duplication factor.
        assert len(unique) < 0.75 * len(small_corpus.phishing)

    def test_proxy_clone_share_respected(self, small_corpus):
        proxies = [r for r in small_corpus.phishing if r.family == "drainer_proxy"]
        share = len(proxies) / len(small_corpus.phishing)
        assert abs(share - small_corpus.config.proxy_clone_share) < 0.05

    def test_benign_mostly_unique(self, small_corpus):
        unique = unique_by_bytecode(small_corpus.benign)
        assert len(unique) > 0.5 * len(small_corpus.benign)


class TestTemporalStructure:
    def test_months_within_window(self, small_corpus):
        config = small_corpus.config
        for record in small_corpus.records:
            assert config.start <= record.deployed_month
            assert record.deployed_month <= config.end

    def test_by_month_partition(self, small_corpus):
        grouped = small_corpus.by_month()
        assert sum(len(v) for v in grouped.values()) == len(small_corpus.records)

    def test_later_months_busier_than_earliest(self, small_corpus):
        grouped = small_corpus.by_month()
        early = len(grouped.get("2023-11", [])) + len(grouped.get("2023-12", []))
        late = len(grouped.get("2024-07", [])) + len(grouped.get("2024-08", []))
        assert late > early

    def test_custom_window(self):
        config = CorpusConfig(
            n_phishing=30,
            n_benign=20,
            seed=4,
            start=DeploymentMonth(2024, 3),
            end=DeploymentMonth(2024, 6),
        )
        corpus = generate_corpus(config)
        months = {str(r.deployed_month) for r in corpus.records}
        assert months <= {"2024-03", "2024-04", "2024-05", "2024-06"}


class TestHardSamples:
    def test_hard_fraction_is_roughly_respected(self):
        config = CorpusConfig(n_phishing=300, n_benign=200, seed=5, hard_fraction=0.3, proxy_clone_share=0.0)
        corpus = generate_corpus(config)
        hard = [r for r in corpus.records if r.metadata.get("hard") == "true"]
        fraction = len(hard) / len(corpus.records)
        assert 0.2 < fraction < 0.4

    def test_zero_hard_fraction(self):
        config = CorpusConfig(n_phishing=50, n_benign=30, seed=5, hard_fraction=0.0)
        corpus = generate_corpus(config)
        assert all(r.metadata.get("hard") != "true" for r in corpus.records)
