"""Tests for contract records, deployment months and dedup helpers."""

import pytest

from repro.chain.addresses import derive_address
from repro.chain.contracts import (
    ContractLabel,
    ContractRecord,
    DeploymentMonth,
    STUDY_END,
    STUDY_START,
    monthly_counts,
    study_months,
    unique_by_bytecode,
)


def make_record(code: bytes, label=ContractLabel.BENIGN, month=DeploymentMonth(2024, 1), seed=0):
    return ContractRecord(
        address=derive_address(seed),
        bytecode=code,
        label=label,
        deployed_month=month,
    )


class TestDeploymentMonth:
    def test_ordering(self):
        assert DeploymentMonth(2023, 10) < DeploymentMonth(2024, 1)
        assert DeploymentMonth(2024, 1) <= DeploymentMonth(2024, 1)

    def test_offset_forward(self):
        assert DeploymentMonth(2023, 12).offset(1) == DeploymentMonth(2024, 1)

    def test_offset_backward(self):
        assert DeploymentMonth(2024, 1).offset(-3) == DeploymentMonth(2023, 10)

    def test_parse_and_str_roundtrip(self):
        month = DeploymentMonth.parse("2024-07")
        assert str(month) == "2024-07"

    def test_invalid_month_rejected(self):
        with pytest.raises(ValueError):
            DeploymentMonth(2024, 13)

    def test_study_window_is_13_months(self):
        months = study_months()
        assert len(months) == 13
        assert months[0] == STUDY_START
        assert months[-1] == STUDY_END


class TestContractLabel:
    def test_binary_encoding(self):
        assert ContractLabel.PHISHING.as_int == 1
        assert ContractLabel.BENIGN.as_int == 0


class TestContractRecord:
    def test_hex_roundtrip(self):
        record = make_record(b"\x60\x80")
        assert record.bytecode_hex == "0x6080"
        assert record.size == 2

    def test_code_hash_matches_duplicates(self):
        first = make_record(b"\x60\x80", seed=1)
        second = make_record(b"\x60\x80", seed=2)
        assert first.code_hash == second.code_hash
        assert first.address != second.address

    def test_is_phishing(self):
        assert make_record(b"", label=ContractLabel.PHISHING).is_phishing
        assert not make_record(b"").is_phishing


class TestDeduplication:
    def test_unique_by_bytecode_keeps_first(self):
        records = [make_record(b"\x01", seed=1), make_record(b"\x01", seed=2), make_record(b"\x02", seed=3)]
        unique = unique_by_bytecode(records)
        assert len(unique) == 2
        assert unique[0].address == records[0].address

    def test_unique_empty(self):
        assert unique_by_bytecode([]) == []


class TestMonthlyCounts:
    def test_counts_by_label(self):
        records = [
            make_record(b"\x01", ContractLabel.PHISHING, DeploymentMonth(2024, 2), seed=1),
            make_record(b"\x02", ContractLabel.PHISHING, DeploymentMonth(2024, 2), seed=2),
            make_record(b"\x03", ContractLabel.BENIGN, DeploymentMonth(2024, 2), seed=3),
        ]
        counts = monthly_counts(records, label=ContractLabel.PHISHING)
        assert counts["2024-02"] == 2

    def test_all_study_months_present(self):
        counts = monthly_counts([])
        assert len(counts) == 13
        assert all(value == 0 for value in counts.values())
