"""Tests for the miniature EVM interpreter."""

import pytest

from repro.evm.assembler import assemble, push
from repro.evm.interpreter import CallContext, EVMInterpreter, ExecutionResult


@pytest.fixture
def interpreter():
    return EVMInterpreter(gas_limit=200_000)


def run(interpreter, items, **kwargs):
    return interpreter.execute(assemble(items), **kwargs)


class TestArithmetic:
    def test_add(self, interpreter):
        result = run(
            interpreter,
            [push(2), push(3), "ADD", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 5

    def test_sub_wraps_modulo_2_256(self, interpreter):
        result = run(
            interpreter,
            [push(5), push(3), "SUB", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        # Stack order: top is 3, so 3 - 5 wraps around.
        assert int.from_bytes(result.return_data, "big") == (3 - 5) % 2**256

    def test_div_by_zero_is_zero(self, interpreter):
        result = run(
            interpreter,
            [push(0), push(7), "DIV", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert int.from_bytes(result.return_data, "big") == 0

    def test_exp(self, interpreter):
        result = run(
            interpreter,
            [push(8), push(2), "EXP", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert int.from_bytes(result.return_data, "big") == 256

    def test_addmod(self, interpreter):
        result = run(
            interpreter,
            [push(7), push(5), push(6), "ADDMOD", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert int.from_bytes(result.return_data, "big") == (6 + 5) % 7

    def test_iszero_and_comparisons(self, interpreter):
        result = run(
            interpreter,
            [push(0), "ISZERO", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert int.from_bytes(result.return_data, "big") == 1

    def test_bitwise(self, interpreter):
        result = run(
            interpreter,
            [push(0b1100), push(0b1010), "AND", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert int.from_bytes(result.return_data, "big") == 0b1000

    def test_shl(self, interpreter):
        result = run(
            interpreter,
            [push(1), push(4), "SHL", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert int.from_bytes(result.return_data, "big") == 16


class TestControlFlow:
    def test_stop_halts(self, interpreter):
        result = run(interpreter, ["STOP"])
        assert result.success and not result.reverted

    def test_revert_reports(self, interpreter):
        result = run(interpreter, [push(0), push(0), "REVERT"])
        assert not result.success
        assert result.reverted

    def test_invalid_instruction_fails(self, interpreter):
        result = interpreter.execute(bytes([0xFE]))
        assert not result.success
        assert "InvalidInstruction" in result.error

    def test_jump_to_jumpdest(self, interpreter):
        # PUSH1 4; JUMP; INVALID; JUMPDEST; STOP  (offsets: 0,2,3,4,5)
        code = assemble([push(4, 1), "JUMP", "INVALID", "JUMPDEST", "STOP"])
        result = interpreter.execute(code)
        assert result.success

    def test_jump_to_non_jumpdest_fails(self, interpreter):
        code = assemble([push(3, 1), "JUMP", "STOP"])
        result = interpreter.execute(code)
        assert not result.success
        assert "InvalidJump" in result.error

    def test_jumpi_not_taken(self, interpreter):
        code = assemble([push(0, 1), push(40, 1), "JUMPI", "STOP"])
        result = interpreter.execute(code)
        assert result.success

    def test_falling_off_code_end_is_stop(self, interpreter):
        result = run(interpreter, [push(1), "POP"])
        assert result.success

    def test_selfdestruct_halts(self, interpreter):
        result = run(interpreter, ["CALLER", "SELFDESTRUCT"])
        assert result.success


class TestStackAndMemory:
    def test_stack_underflow(self, interpreter):
        result = run(interpreter, ["ADD"])
        assert not result.success
        assert "StackUnderflow" in result.error

    def test_dup_and_swap(self, interpreter):
        result = run(
            interpreter,
            [push(1), push(2), "DUP2", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        assert int.from_bytes(result.return_data, "big") == 1

    def test_mstore8(self, interpreter):
        result = run(
            interpreter,
            [push(0xAB), push(0), "MSTORE8", push(1), push(0), "RETURN"],
        )
        assert result.return_data == b"\xab"

    def test_storage_persists_in_result(self, interpreter):
        result = run(interpreter, [push(0x2A), push(1), "SSTORE", "STOP"])
        assert result.storage == {1: 0x2A}

    def test_sload_reads_initial_storage(self, interpreter):
        result = run(
            interpreter,
            [push(5), "SLOAD", push(0), "MSTORE", push(32), push(0), "RETURN"],
            storage={5: 99},
        )
        assert int.from_bytes(result.return_data, "big") == 99

    def test_sha3(self, interpreter):
        result = run(
            interpreter,
            [push(0), push(0), "SHA3", push(0), "MSTORE", push(32), push(0), "RETURN"],
        )
        import hashlib

        assert result.return_data == hashlib.sha3_256(b"").digest()


class TestEnvironment:
    def test_caller_and_callvalue(self, interpreter):
        context = CallContext(caller=0x1234, callvalue=7)
        result = run(
            interpreter,
            ["CALLER", push(0), "MSTORE", push(32), push(0), "RETURN"],
            context=context,
        )
        assert int.from_bytes(result.return_data, "big") == 0x1234

    def test_calldataload(self, interpreter):
        context = CallContext(calldata=bytes.fromhex("11" * 32))
        result = run(
            interpreter,
            [push(0), "CALLDATALOAD", push(0), "MSTORE", push(32), push(0), "RETURN"],
            context=context,
        )
        assert result.return_data == bytes.fromhex("11" * 32)

    def test_calldatasize(self, interpreter):
        context = CallContext(calldata=b"\x01\x02\x03")
        result = run(
            interpreter,
            ["CALLDATASIZE", push(0), "MSTORE", push(32), push(0), "RETURN"],
            context=context,
        )
        assert int.from_bytes(result.return_data, "big") == 3

    def test_external_call_is_modelled_as_success(self, interpreter):
        items = [push(0)] * 6 + ["CALLER", "GAS", "CALL", push(0), "MSTORE", push(32), push(0), "RETURN"]
        result = run(interpreter, [push(0), push(0), push(0), push(0), push(0), push(0), "CALLER", "GAS", "CALL",
                                   push(0), "MSTORE", push(32), push(0), "RETURN"])
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 1

    def test_gas_is_accounted(self, interpreter):
        result = run(interpreter, [push(1), push(2), "ADD", "POP", "STOP"])
        assert result.gas_used == 3 + 3 + 3 + 2 + 0

    def test_out_of_gas(self):
        tiny = EVMInterpreter(gas_limit=4)
        result = tiny.execute(assemble([push(1), push(2), "ADD", "STOP"]))
        assert not result.success
        assert "OutOfGas" in result.error

    def test_step_limit(self):
        looping = assemble(["JUMPDEST", push(0, 1), "JUMP"])
        limited = EVMInterpreter(gas_limit=10**9, max_steps=500)
        result = limited.execute(looping)
        assert not result.success
        assert "step limit" in result.error


class TestGeneratedContracts:
    def test_all_generated_contracts_terminate_cleanly(self, corpus):
        interpreter = EVMInterpreter()
        for record in corpus.records[:60]:
            if record.family in ("drainer_proxy", "minimal_proxy"):
                continue
            result = interpreter.execute(record.bytecode)
            assert result.success or result.reverted, result.error
