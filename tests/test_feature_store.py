"""Tests for the persistent feature store and its driver wiring.

Covers corpus fingerprinting, cold→warm store sessions, corrupt-file
recovery, the one-byte-corruption guard on the persistence format, and the
end-to-end warm-start guarantee: running an experiment driver twice with
``Scale.feature_cache_dir`` set performs zero kernel passes on the second
run and produces identical matrices.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.scalability import run_scalability
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.features.batch import BatchFeatureService, CacheLoadError
from repro.features.store import (
    FeatureStore,
    corpus_fingerprint,
    feature_session,
    last_session,
)


def make_codes(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=int(rng.integers(1, 200)), dtype=np.uint8).tobytes()
        for _ in range(n)
    ]


def cached_scale(scale, tmp_path, **extra):
    """A copy of ``scale`` with the persistent feature store turned on."""
    return dataclasses.replace(scale, feature_cache_dir=str(tmp_path), **extra)


class TestCorpusFingerprint:
    def test_deterministic(self):
        codes = make_codes(5, seed=1)
        assert corpus_fingerprint(codes) == corpus_fingerprint(codes)

    def test_order_and_duplicate_insensitive(self):
        codes = make_codes(5, seed=2)
        shuffled = list(reversed(codes)) + codes[:2]
        assert corpus_fingerprint(codes) == corpus_fingerprint(shuffled)

    def test_content_sensitive(self):
        codes = make_codes(5, seed=3)
        assert corpus_fingerprint(codes) != corpus_fingerprint(codes[:-1])

    def test_hex_and_bytes_agree(self):
        code = b"\x60\x01\x60\x02\x01"
        assert corpus_fingerprint([code]) == corpus_fingerprint(["0x6001600201"])


class TestStoreSession:
    def test_cold_then_warm(self, tmp_path):
        codes = make_codes(8, seed=4)
        store = FeatureStore(tmp_path)
        with store.session(codes) as cold:
            reference = cold.service.count_matrix(codes)
        assert not cold.warm_start
        assert cold.saved
        assert cold.kernel_passes > 0
        assert cold.path.exists()

        with store.session(codes) as warmed:
            matrix = warmed.service.count_matrix(codes)
        assert warmed.warm_start
        assert warmed.entries_loaded == len(set(codes))
        assert warmed.kernel_passes == 0
        assert not warmed.saved  # no new work, nothing to rewrite
        assert warmed.hit_rate == 1.0
        assert np.array_equal(matrix, reference)
        assert (store.file_hits, store.file_misses) == (1, 1)

    def test_session_installs_default_service(self, tmp_path):
        codes = make_codes(4, seed=5)
        from repro.features.batch import get_default_service

        with FeatureStore(tmp_path).session(codes) as session:
            assert get_default_service() is session.service
        assert get_default_service() is not session.service

    def test_new_views_trigger_resave(self, tmp_path):
        codes = make_codes(4, seed=6)
        store = FeatureStore(tmp_path)
        with store.session(codes):
            pass
        # A *sequence* of an unseen bytecode is a real new kernel pass.
        extra = make_codes(2, seed=7)
        with store.session(codes) as session:
            session.service.sequences(extra)
        assert session.warm_start
        assert session.kernel_passes > 0
        assert session.saved

    def test_ngram_views_persist_without_kernel_passes(self, tmp_path):
        # The warm-up covers sequences + counts only; n-gram codes are
        # kernel-free (no disassembly) yet must still be saved back, or an
        # SCSGuard-style run would recompute them on every invocation.
        codes = make_codes(4, seed=12)
        store = FeatureStore(tmp_path)
        with store.session(codes):
            pass
        with store.session(codes) as ngram_run:
            for code in codes:
                ngram_run.service.ngram_codes(code, 2)
        assert ngram_run.warm_start
        assert ngram_run.kernel_passes == 0
        assert ngram_run.ngram_misses == len(set(codes))
        assert ngram_run.saved  # dirty via the n-gram view alone
        with store.session(codes) as warm:
            for code in codes:
                warm.service.ngram_codes(code, 2)
        assert warm.kernel_passes == 0 and warm.ngram_misses == 0
        assert not warm.saved
        assert warm.store is store and store.file_hits == 2

    def test_corrupt_file_is_cold_start_and_overwritten(self, tmp_path):
        codes = make_codes(5, seed=8)
        store = FeatureStore(tmp_path)
        with store.session(codes) as first:
            pass
        first.path.write_bytes(b"garbage, not a zip archive")
        with store.session(codes) as second:
            pass
        assert not second.warm_start
        assert second.saved
        with store.session(codes) as third:
            pass
        assert third.warm_start
        assert third.kernel_passes == 0

    def test_session_releases_service_but_keeps_telemetry(self, tmp_path):
        codes = make_codes(5, seed=13)
        with FeatureStore(tmp_path).session(codes) as session:
            live = session.service
            assert live is not None
        # The close snapshotted the counters and dropped the cache reference,
        # so last_session() cannot pin a finished corpus' arrays in memory.
        assert session.service is None
        assert session.kernel_passes > 0
        assert session.lookups > 0 and session.hit_rate >= 0.0
        assert live._pool is None  # worker pool released too

    def test_fresh_service_skips_the_warm_sweep(self, smoke_scale, tmp_path):
        # MEM fresh_service cells extract through their own cold services,
        # so the session pre-warm would be pure wasted work.
        codes = make_codes(5, seed=14)
        scale = cached_scale(smoke_scale, tmp_path, fresh_service=True)
        with feature_session(scale, codes) as session:
            assert session is not None
            assert session.lookups == 0  # no sweep happened
            assert session.kernel_passes == 0
        assert session.saved  # first sight of this corpus still records it

    def test_unconfigured_feature_session_is_noop(self, smoke_scale):
        with feature_session(smoke_scale, [b"\x00"]) as session:
            assert session is None
        with feature_session(None, [b"\x00"]) as session:
            assert session is None

    def test_noop_save_leaves_file_untouched(self, tmp_path):
        # Regression: a pure-warm session used to rewrite the cache file
        # byte-for-byte on every exit, churning mtimes and rsync state.
        codes = make_codes(6, seed=15)
        store = FeatureStore(tmp_path)
        with store.session(codes) as cold:
            cold.service.count_matrix(codes)
        raw = cold.path.read_bytes()
        mtime = cold.path.stat().st_mtime_ns
        with store.session(codes) as warm:
            warm.service.count_matrix(codes)
            warm.service.sequences(codes)
        assert warm.warm_start and not warm.dirty
        assert not warm.saved
        assert warm.path.stat().st_mtime_ns == mtime
        assert warm.path.read_bytes() == raw

    def test_analysis_views_dirty_the_session(self, tmp_path):
        # Analysis vectors derive from already-cached sequences (zero kernel
        # passes on a warm run) yet are persistable — computing them must
        # still mark the session dirty or they would never reach disk.
        codes = make_codes(4, seed=16)
        store = FeatureStore(tmp_path)
        with store.session(codes):
            pass
        with store.session(codes) as analysis_run:
            analysis_run.service.analysis_matrix(codes)
        assert analysis_run.kernel_passes == 0
        assert analysis_run.analysis_misses == len(set(codes))
        assert analysis_run.saved
        with store.session(codes) as warm:
            warm.service.analysis_matrix(codes)
        assert warm.analysis_misses == 0
        assert not warm.saved


class TestBlobSessions:
    """FeatureStore wiring for the corpus-blob plane."""

    def test_session_builds_and_attaches_blob(self, tmp_path):
        codes = make_codes(6, seed=17)
        store = FeatureStore(tmp_path / "cache", blob_dir=tmp_path / "blobs")
        with store.session(codes) as session:
            assert session.blob is not None
            assert session.service.corpus_blob is session.blob
            assert len(session.blob) == len(set(codes))
            matrix = session.service.count_matrix(codes)
        reference = BatchFeatureService().count_matrix(codes)
        assert np.array_equal(matrix, reference)
        assert session.blob.path.parent == tmp_path / "blobs"

    def test_blob_only_store_has_no_cache_file(self, tmp_path):
        codes = make_codes(5, seed=18)
        store = FeatureStore(None, blob_dir=tmp_path)
        with store.session(codes) as session:
            assert session.path is None
            assert session.blob is not None
            session.service.count_matrix(codes)
        assert not session.saved
        assert list(tmp_path.glob("corpus-*.blob"))

    def test_sessions_share_spill_dir_under_cache_dir(self, tmp_path):
        store = FeatureStore(tmp_path)
        assert store.spill_dir == tmp_path / "spill"
        codes = make_codes(4, seed=19)
        with store.session(codes) as session:
            assert session.service.spill_dir == store.spill_dir

    def test_scale_knob_threads_blob_through_feature_session(
        self, smoke_scale, tmp_path
    ):
        codes = make_codes(5, seed=20)
        scale = dataclasses.replace(
            smoke_scale, corpus_blob_dir=str(tmp_path / "blobs")
        )
        with feature_session(scale, codes) as session:
            assert session is not None
            assert session.blob is not None
            matrix = session.service.count_matrix(codes)
        assert np.array_equal(matrix, BatchFeatureService().count_matrix(codes))
        assert list((tmp_path / "blobs").glob("corpus-*.blob"))


class TestSingleByteCorruption:
    """Tier-1 guard: the persistence format must reject byte-level damage."""

    def test_one_flipped_byte_rejected(self, tmp_path):
        codes = make_codes(6, seed=9)
        store = FeatureStore(tmp_path)
        with store.session(codes) as session:
            pass
        payload = bytearray(session.path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        session.path.write_bytes(bytes(payload))
        with pytest.raises(CacheLoadError):
            BatchFeatureService().load(session.path)
        # The store layer degrades to a cold start instead of erroring out.
        with store.session(codes) as recovered:
            pass
        assert not recovered.warm_start
        assert recovered.saved

    def test_every_byte_offset_rejected(self, tmp_path):
        # The whole-file integrity digest makes the guard position-free:
        # a flip at ANY offset — member data, zip headers the reader never
        # consults, the digest itself — must be rejected.
        codes = make_codes(4, seed=21)
        store = FeatureStore(tmp_path)
        with store.session(codes) as session:
            pass
        pristine = session.path.read_bytes()
        for offset in range(len(pristine)):
            payload = bytearray(pristine)
            payload[offset] ^= 0xFF
            session.path.write_bytes(bytes(payload))
            with pytest.raises(CacheLoadError):
                BatchFeatureService().load(session.path)
        session.path.write_bytes(pristine)
        BatchFeatureService().load(session.path)  # pristine file still loads


class TestDriverWarmStart:
    def test_fig3_second_run_is_warm_and_identical(self, dataset, smoke_scale, tmp_path):
        scale = cached_scale(smoke_scale, tmp_path)
        first = run_fig3(dataset, scale=scale)
        cold = last_session()
        assert cold is not None and not cold.warm_start
        assert cold.kernel_passes > 0 and cold.saved

        second = run_fig3(dataset, scale=scale)
        warm = last_session()
        assert warm is not cold
        assert warm.warm_start
        assert warm.kernel_passes == 0
        assert not warm.saved
        for opcode in first.opcodes:
            assert np.array_equal(first.benign_usage[opcode], second.benign_usage[opcode])
            assert np.array_equal(
                first.phishing_usage[opcode], second.phishing_usage[opcode]
            )

    def test_fig3_explicit_service_bypasses_store(self, dataset, smoke_scale, tmp_path):
        scale = cached_scale(smoke_scale, tmp_path)
        service = BatchFeatureService()
        marker = last_session()
        run_fig3(dataset, service=service, scale=scale)
        assert last_session() is marker  # no session was opened
        assert list(tmp_path.iterdir()) == []
        assert service.kernel_passes > 0

    def test_table2_second_run_is_warm(self, dataset, smoke_scale, tmp_path):
        scale = cached_scale(smoke_scale, tmp_path)
        first = run_table2(dataset, scale, model_names=["Random Forest"])
        assert not last_session().warm_start
        second = run_table2(dataset, scale, model_names=["Random Forest"])
        warm = last_session()
        assert warm.warm_start
        assert warm.kernel_passes == 0
        assert first.rows() == second.rows()

    def test_scalability_second_run_is_warm(self, dataset, smoke_scale, tmp_path):
        scale = cached_scale(smoke_scale, tmp_path)
        subset = dataset.split_fraction(0.5, seed=1)
        first = run_scalability(subset, scale, model_names=["Random Forest"])
        assert not last_session().warm_start
        second = run_scalability(subset, scale, model_names=["Random Forest"])
        warm = last_session()
        assert warm.warm_start
        assert warm.kernel_passes == 0
        assert first.fig5_rows() == second.fig5_rows()

    def test_fig2_prewarms_store_and_conflict_rejected(
        self, smoke_scale, corpus, tmp_path
    ):
        scale = cached_scale(smoke_scale, tmp_path / "features")
        with pytest.raises(ValueError):
            run_fig2(scale, corpus=corpus, cache_dir=tmp_path / "corpus")
        series = run_fig2(scale, corpus=corpus)
        session = last_session()
        assert session is not None and session.saved
        assert series.total_obtained == len(corpus.phishing)
        run_fig2(scale, corpus=corpus)
        assert last_session().warm_start
        assert last_session().kernel_passes == 0

    def test_table1_accepts_scale_as_noop(self, smoke_scale, tmp_path):
        scale = cached_scale(smoke_scale, tmp_path)
        marker = last_session()
        assert len(run_table1(scale=scale)) == 144
        assert last_session() is marker  # registry-only: no store session
        assert list(tmp_path.iterdir()) == []

    def test_process_executor_store_round_trip(self, tmp_path):
        codes = make_codes(10, seed=11)
        thread_store = FeatureStore(tmp_path / "thread")
        process_store = FeatureStore(
            tmp_path / "process", max_workers=2, chunk_size=2, executor="process"
        )
        with thread_store.session(codes) as ours:
            reference = ours.service.count_matrix(codes)
        with process_store.session(codes) as theirs:
            matrix = theirs.service.count_matrix(codes)
        assert np.array_equal(matrix, reference)
        with process_store.session(codes) as warmed:
            pass
        assert warmed.warm_start and warmed.kernel_passes == 0
