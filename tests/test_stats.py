"""Tests for the statistics substrate (PAM building blocks)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.metrics import area_under_time
from repro.stats.aut import TimeDecayCurve, aut_table
from repro.stats.cdd import compute_cdd
from repro.stats.correction import bonferroni, holm_bonferroni
from repro.stats.dunn import dunn_test
from repro.stats.effect_size import cliffs_delta
from repro.stats.normality import count_non_normal, normality_by_group, shapiro_wilk
from repro.stats.rank_tests import (
    friedman,
    kruskal_wallis,
    kruskal_wallis_by_metric,
    pairwise_wilcoxon,
    wilcoxon_signed_rank,
)


class TestHolmBonferroni:
    def test_known_example(self):
        adjusted = holm_bonferroni([0.01, 0.04, 0.03])
        assert adjusted[0] == pytest.approx(0.03)
        assert adjusted[1] == pytest.approx(0.06)
        assert adjusted[2] == pytest.approx(0.06)

    def test_monotone_and_bounded(self):
        adjusted = holm_bonferroni([0.5, 0.9, 0.001, 0.2])
        assert all(0 <= value <= 1 for value in adjusted)

    def test_empty(self):
        assert holm_bonferroni([]) == []

    def test_invalid_pvalues(self):
        with pytest.raises(ValueError):
            holm_bonferroni([1.5])

    def test_never_below_raw(self):
        raw = [0.02, 0.2, 0.8]
        adjusted = holm_bonferroni(raw)
        assert all(a >= r for a, r in zip(adjusted, raw))

    def test_less_conservative_than_bonferroni(self):
        raw = [0.01, 0.02, 0.03, 0.04]
        holm = holm_bonferroni(raw)
        plain = bonferroni(raw)
        assert all(h <= b + 1e-12 for h, b in zip(holm, plain))

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_output_in_unit_interval(self, values):
        assert all(0 <= v <= 1 for v in holm_bonferroni(values))


class TestShapiroWilk:
    def test_normal_sample_not_rejected(self):
        rng = np.random.default_rng(0)
        result = shapiro_wilk(rng.normal(size=100))
        assert result.is_normal

    def test_heavily_skewed_sample_rejected(self):
        rng = np.random.default_rng(0)
        result = shapiro_wilk(rng.exponential(size=200) ** 3)
        assert not result.is_normal

    def test_constant_sample_treated_as_non_normal(self):
        result = shapiro_wilk([1.0] * 10)
        assert not result.is_normal

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            shapiro_wilk([1.0, 2.0])

    def test_by_group_counting(self):
        rng = np.random.default_rng(1)
        groups = {"a": rng.normal(size=50), "b": rng.exponential(size=200) ** 3}
        results = normality_by_group(groups)
        assert count_non_normal(results) >= 1


class TestKruskalWallis:
    def test_identical_groups_not_significant(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=60)
        groups = [base + rng.normal(scale=0.01, size=60) for _ in range(3)]
        assert not kruskal_wallis(groups).is_significant

    def test_shifted_groups_significant(self):
        rng = np.random.default_rng(0)
        groups = [rng.normal(loc=i, size=40) for i in range(3)]
        assert kruskal_wallis(groups).is_significant

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            kruskal_wallis([[1.0, 2.0]])

    def test_by_metric_applies_holm(self):
        rng = np.random.default_rng(0)
        groups = [rng.normal(loc=i, size=30) for i in range(3)]
        results = kruskal_wallis_by_metric({"accuracy": groups, "f1": groups})
        assert results["accuracy"].adjusted_p_value >= results["accuracy"].p_value
        assert all(result.is_significant for result in results.values())


class TestDunn:
    def test_detects_the_outlier_group(self):
        rng = np.random.default_rng(0)
        groups = {
            "a": rng.normal(0, 1, 40),
            "b": rng.normal(0.05, 1, 40),
            "c": rng.normal(4, 1, 40),
        }
        result = dunn_test(groups)
        assert result.pair("a", "c").is_significant
        assert result.pair("b", "c").is_significant
        assert not result.pair("a", "b").is_significant

    def test_pair_lookup_order_insensitive(self):
        rng = np.random.default_rng(1)
        groups = {"x": rng.normal(size=20), "y": rng.normal(size=20)}
        result = dunn_test(groups)
        assert result.pair("x", "y") is result.pair("y", "x")

    def test_unknown_pair_raises(self):
        rng = np.random.default_rng(1)
        result = dunn_test({"x": rng.normal(size=10), "y": rng.normal(size=10)})
        with pytest.raises(KeyError):
            result.pair("x", "z")

    def test_matrix_symmetric_with_unit_diagonal(self):
        rng = np.random.default_rng(2)
        groups = {name: rng.normal(loc=i, size=25) for i, name in enumerate("abcd")}
        matrix = dunn_test(groups).adjusted_p_matrix()
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            dunn_test({"only": [1.0, 2.0]})

    def test_significant_fraction_bounds(self):
        rng = np.random.default_rng(3)
        groups = {name: rng.normal(loc=3 * i, size=30) for i, name in enumerate("abc")}
        fraction = dunn_test(groups).significant_fraction()
        assert 0.0 <= fraction <= 1.0


class TestFriedmanWilcoxon:
    def test_friedman_detects_consistent_ordering(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(12, 1))
        measurements = np.hstack([base, base + 1.0, base + 2.0]) + rng.normal(scale=0.01, size=(12, 3))
        assert friedman(measurements).is_significant

    def test_friedman_needs_three_treatments(self):
        with pytest.raises(ValueError):
            friedman(np.ones((5, 2)))

    def test_wilcoxon_identical_samples(self):
        result = wilcoxon_signed_rank([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.p_value == 1.0

    def test_wilcoxon_shifted_samples(self):
        rng = np.random.default_rng(0)
        first = rng.normal(size=30)
        result = wilcoxon_signed_rank(first, first + 2.0)
        assert result.is_significant

    def test_wilcoxon_length_mismatch(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])

    def test_pairwise_wilcoxon_keys(self):
        rng = np.random.default_rng(1)
        measurements = rng.normal(size=(10, 3))
        results = pairwise_wilcoxon(measurements, ["a", "b", "c"])
        assert set(results) == {"a|b", "a|c", "b|c"}


class TestCliffsDelta:
    def test_complete_dominance(self):
        assert cliffs_delta([5, 6, 7], [1, 2, 3]).delta == 1.0
        assert cliffs_delta([1, 2, 3], [5, 6, 7]).delta == -1.0

    def test_identical_samples(self):
        result = cliffs_delta([1, 2, 3], [1, 2, 3])
        assert result.delta == pytest.approx(0.0, abs=0.34)
        assert result.magnitude in {"negligible", "small", "medium"}

    def test_magnitude_labels(self):
        assert cliffs_delta([10] * 5, [0] * 5).magnitude == "large"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cliffs_delta([], [1.0])


class TestCriticalDifferenceDiagram:
    def test_best_classifier_has_lowest_rank(self):
        rng = np.random.default_rng(0)
        n_datasets = 8
        worst = rng.uniform(0.5, 0.6, n_datasets)
        middle = rng.uniform(0.7, 0.8, n_datasets)
        best = rng.uniform(0.9, 0.95, n_datasets)
        measurements = np.column_stack([worst, middle, best])
        cdd = compute_cdd(measurements, ["worst", "middle", "best"])
        assert cdd.best() == "best"
        assert cdd.average_ranks["best"] < cdd.average_ranks["worst"]

    def test_two_classifier_fallback(self):
        measurements = np.column_stack([np.arange(6.0), np.arange(6.0) + 5])
        cdd = compute_cdd(measurements, ["a", "b"])
        assert set(cdd.average_ranks) == {"a", "b"}

    def test_render_contains_names(self):
        measurements = np.random.default_rng(0).uniform(size=(5, 3))
        cdd = compute_cdd(measurements, ["m1", "m2", "m3"])
        text = cdd.render()
        assert "m1" in text and "m3" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            compute_cdd(np.ones((4, 3)), ["a", "b"])

    def test_cliques_contain_similar_models(self):
        rng = np.random.default_rng(1)
        base = rng.uniform(0.7, 0.72, size=(6, 1))
        measurements = np.hstack([base, base + rng.normal(scale=1e-3, size=(6, 1)), base + 0.2])
        cdd = compute_cdd(measurements, ["a", "b", "c"])
        flattened = {name for clique in cdd.cliques for name in clique}
        if cdd.friedman_result.is_significant:
            assert {"a", "b"} <= flattened or not cdd.pairwise_significant["a|b"]


class TestAUTCurves:
    def test_curve_aut_matches_function(self):
        curve = TimeDecayCurve("RF", "f1", [0.9, 0.8, 0.85])
        assert curve.aut == pytest.approx(area_under_time([0.9, 0.8, 0.85]))

    def test_final_drop(self):
        assert TimeDecayCurve("RF", "f1", [0.9, 0.7]).final_drop == pytest.approx(0.2)

    def test_aut_table(self):
        curves = [TimeDecayCurve("a", "f1", [0.9, 0.9]), TimeDecayCurve("b", "f1", [0.5, 0.4])]
        table = aut_table(curves)
        assert table["a"] > table["b"]
