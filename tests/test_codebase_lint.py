"""Codebase hygiene lints over ``src/``.

A small AST pass enforcing three rules across every production module:

* no bare ``except:`` clauses (they swallow ``KeyboardInterrupt`` and mask
  programming errors — catch a concrete exception type instead),
* no mutable default arguments (``def f(x=[])`` shares one list across all
  calls),
* no ``assert`` statements outside tests (``python -O`` strips them, so
  they must never guard runtime invariants — raise an exception instead),
* no explicit ``pickle`` use in ``repro.features`` (corpus bytes must move
  as memmap spans through the zero-copy blob path, never as hand-pickled
  blobs — see :mod:`repro.features.corpus`),
* no bare ``print(`` calls (diagnostic output goes through
  :mod:`repro.obs.log`, where it can be silenced, redirected, or stamped
  with the active trace id — stray prints pollute library users' stdout),

plus a ``compileall`` sweep pinning that every module byte-compiles.
"""

from __future__ import annotations

import ast
import compileall
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

MUTABLE_DEFAULT_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _python_sources():
    return sorted(SRC.rglob("*.py"))


def _parse(path: Path) -> ast.AST:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def _location(path: Path, node: ast.AST) -> str:
    return f"{path.relative_to(SRC)}:{node.lineno}"


def test_source_tree_is_nonempty():
    assert len(_python_sources()) > 30


def test_no_bare_except_clauses():
    offenders = []
    for path in _python_sources():
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                offenders.append(_location(path, node))
    assert offenders == [], f"bare except clauses found: {offenders}"


def test_no_mutable_default_arguments():
    offenders = []
    for path in _python_sources():
        for node in ast.walk(_parse(path)):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, MUTABLE_DEFAULT_NODES) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in {"list", "dict", "set", "bytearray"}
                ):
                    offenders.append(f"{_location(path, node)} ({node.name})")
    assert offenders == [], f"mutable default arguments found: {offenders}"


def test_no_assert_statements_in_production_code():
    offenders = []
    for path in _python_sources():
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.Assert):
                offenders.append(_location(path, node))
    assert offenders == [], f"assert statements found in src/: {offenders}"


def test_no_pickling_of_corpus_bytes_in_features():
    """The span path is mandatory for corpus payloads in ``repro.features``.

    ``BatchFeatureService``'s process backend used to ship pickled chunk
    byte blobs; the corpus-blob plane replaced that with ``(path, span)``
    lists over a shared memmap.  Any explicit ``pickle.dumps``/``loads``
    (or a ``pickle`` import at all) in the features package would
    reintroduce a serialization path for raw corpus bytes, so it is banned
    outright — the implicit executor-level pickling of *small* task
    arguments and packed result arrays is the only serialization allowed.
    """
    features = SRC / "repro" / "features"
    offenders = []
    for path in sorted(features.rglob("*.py")):
        for node in ast.walk(_parse(path)):
            if isinstance(node, ast.Import) and any(
                alias.name == "pickle" or alias.name.startswith("pickle.")
                for alias in node.names
            ):
                offenders.append(_location(path, node))
            elif isinstance(node, ast.ImportFrom) and node.module == "pickle":
                offenders.append(_location(path, node))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"dumps", "loads", "dump", "load"}
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "pickle"
            ):
                offenders.append(_location(path, node))
    assert offenders == [], f"pickle use found in repro.features: {offenders}"


def test_no_bare_print_in_production_code():
    """Production modules must log through ``repro.obs.log``, not print."""
    offenders = []
    for path in _python_sources():
        for node in ast.walk(_parse(path)):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                offenders.append(_location(path, node))
    assert offenders == [], f"bare print() calls found in src/: {offenders}"


def test_all_modules_byte_compile(tmp_path):
    ok = compileall.compile_dir(
        str(SRC),
        quiet=2,
        force=True,
        legacy=False,
        workers=1,
        invalidation_mode=__import__("py_compile").PycInvalidationMode.CHECKED_HASH,
    )
    assert ok, "compileall reported syntax errors under src/"


def test_sources_import_cleanly():
    # The package root must import without executing heavyweight side effects.
    import repro

    assert repro.__name__ == "repro"
    assert "repro" in sys.modules
