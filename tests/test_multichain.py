"""Tests for multi-chain fan-in monitoring (``repro.monitor.multichain``)
and the bytecode-free impersonation detector riding on it."""

import collections

import pytest

from repro.chain.addresses import create_address
from repro.chain.blocks import BlockStream, BlockStreamConfig, ContractLabel
from repro.chain.rpc import SimulatedEthereumNode
from repro.core.config import Scale
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor import (
    Alert,
    Checkpoint,
    ImpersonationAlert,
    ImpersonationDetector,
    MultiChainConfig,
    MultiChainMonitor,
    ShardRouter,
    chain_stream_configs,
    shard_for,
)
from repro.serving import ScoringService

N_BLOCKS = 22
CONFIRMATIONS = 2
N_CONFIRMED = N_BLOCKS - CONFIRMATIONS


@pytest.fixture(scope="module")
def detector(dataset):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = BatchFeatureService()
    detector.fit(dataset.bytecodes, dataset.labels)
    return detector


def _config(**kwargs):
    from repro.monitor import MonitorConfig

    kwargs.setdefault("confirmations", CONFIRMATIONS)
    kwargs.setdefault("poll_blocks", 4)
    kwargs.setdefault("drift_window", 8)
    return MultiChainConfig(monitor=MonitorConfig(**kwargs))


def _mine(stream_config, blocks=N_BLOCKS):
    node = SimulatedEthereumNode(chain_id=stream_config.chain_id)
    node.mine(BlockStream(stream_config), blocks)
    return node


def _nodes(n_chains=3, **overrides):
    kwargs = {"seed": 67, "deploys_per_block": 2.0, "phishing_share": 0.3, **overrides}
    return [_mine(config) for config in chain_stream_configs(n_chains, BlockStreamConfig(**kwargs))]


# ----------------------------------------------------------------------
# consistent-hash shard routing
# ----------------------------------------------------------------------


class TestShardRouter:
    def test_deterministic_across_instances(self):
        keys = [bytes([i, i // 3]) for i in range(200)]
        first = [ShardRouter(5).shard_for(key) for key in keys]
        second = [ShardRouter(5).shard_for(key) for key in keys]
        assert first == second
        assert [shard_for(key, 5) for key in keys] == first

    def test_accepts_hex_strings_with_and_without_prefix(self):
        assert shard_for("0xdeadbeef", 4) == shard_for("deadbeef", 4)

    def test_all_shards_reachable_and_roughly_balanced(self):
        router = ShardRouter(4)
        counts = collections.Counter(
            router.shard_for(i.to_bytes(4, "big")) for i in range(8192)
        )
        assert set(counts) == {0, 1, 2, 3}
        mean = 8192 / 4
        for count in counts.values():
            assert 0.5 * mean < count < 1.5 * mean

    def test_adding_a_shard_remaps_a_minority_of_keys(self):
        # The consistent-hashing property: growing the ring by one shard
        # moves only the keys adjacent to the new shard's points, unlike
        # ``hash % n`` which reshuffles nearly everything.
        keys = [i.to_bytes(4, "big") for i in range(8192)]
        before = [shard_for(key, 4) for key in keys]
        after = [shard_for(key, 5) for key in keys]
        moved = sum(1 for old, new in zip(before, after) if old != new)
        assert moved / len(keys) < 0.35  # ideal is 1/5; allow slack
        # Keys that moved all went *to* the new shard (nothing shuffled
        # between the surviving shards).
        for old, new in zip(before, after):
            if old != new:
                assert new == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, replicas=0)


# ----------------------------------------------------------------------
# impersonation: chain-side generation
# ----------------------------------------------------------------------


class TestImpersonationWave:
    def test_disabled_by_default_and_draw_stable(self):
        # Adding the impersonation knobs must not perturb existing chains:
        # the default config never consumes the extra RNG draw.
        plain = BlockStream(BlockStreamConfig(seed=9)).take(12)
        explicit = BlockStream(
            BlockStreamConfig(seed=9, impersonation_share=0.0)
        ).take(12)
        assert plain == explicit
        families = {
            tx.family for block in plain for tx in block.transactions
        }
        assert "address_impersonation" not in families

    def test_wave_produces_vanity_addresses_of_earlier_deployments(self):
        stream = BlockStream(
            BlockStreamConfig(
                seed=9, deploys_per_block=2.5, impersonation_share=0.5
            )
        )
        blocks = stream.take(20)
        seen = {}
        impersonations = []
        for block in blocks:
            for tx in block.transactions:
                if tx.family == "address_impersonation":
                    impersonations.append((block.number, tx))
                seen.setdefault(tx.contract_address, block.number)
        assert len(impersonations) >= 5
        for number, tx in impersonations:
            assert tx.label is ContractLabel.PHISHING
            prefix = tx.contract_address[2:6]
            suffix = tx.contract_address[-4:]
            victims = [
                (address, first_block)
                for address, first_block in seen.items()
                if address != tx.contract_address
                and address[2:6] == prefix
                and address[-4:] == suffix
            ]
            assert victims, "every impersonation copies a real address"
            assert min(first for _, first in victims) < number

    def test_honest_deployments_follow_create_rule(self):
        blocks = BlockStream(BlockStreamConfig(seed=9, deploys_per_block=2.0)).take(8)
        for block in blocks:
            for tx in block.transactions:
                assert tx.contract_address == create_address(tx.sender, tx.nonce)

    def test_chain_id_distinguishes_same_seed_chains(self):
        one = BlockStream(BlockStreamConfig(seed=9, chain_id=1)).take(6)
        two = BlockStream(BlockStreamConfig(seed=9, chain_id=2)).take(6)
        assert [b.block_hash for b in one] != [b.block_hash for b in two]
        # Same seed => same traffic content (the clone-heavy cross-chain
        # workload): bytecodes repeat even though hashes/addresses differ.
        bytecodes_one = [tx.bytecode for b in one for tx in b.transactions]
        bytecodes_two = [tx.bytecode for b in two for tx in b.transactions]
        assert bytecodes_one == bytecodes_two
        addresses_one = {tx.contract_address for b in one for tx in b.transactions}
        addresses_two = {tx.contract_address for b in two for tx in b.transactions}
        assert addresses_one.isdisjoint(addresses_two)

    def test_chain_stream_configs_spread_ids_and_seeds(self):
        configs = chain_stream_configs(3, BlockStreamConfig(seed=50))
        assert [c.chain_id for c in configs] == [1, 2, 3]
        assert [c.seed for c in configs] == [50, 51, 52]
        clones = chain_stream_configs(3, BlockStreamConfig(seed=50), spread_seeds=False)
        assert {c.seed for c in clones} == {50}


# ----------------------------------------------------------------------
# impersonation: detector
# ----------------------------------------------------------------------


class _Tx:
    def __init__(self, contract_address, tx_hash="0x" + "00" * 32, sender=None, nonce=0):
        self.contract_address = contract_address
        self.tx_hash = tx_hash
        self.sender = sender or "0x" + "11" * 20
        self.nonce = nonce


class TestImpersonationDetector:
    def test_flags_prefix_suffix_match_of_known_contract(self):
        detector = ImpersonationDetector(chain_id=7)
        victim = "0x" + "abcd" + "0" * 32 + "beef"
        scam = "0x" + "abcd" + "f" * 32 + "beef"
        assert detector.observe(1, _Tx(victim)) is None
        alert = detector.observe(5, _Tx(scam, tx_hash="0x" + "22" * 32))
        assert isinstance(alert, ImpersonationAlert)
        assert alert.chain_id == 7
        assert alert.block_number == 5
        assert alert.impersonated_address == victim
        assert alert.matched_prefix == "abcd"
        assert alert.matched_suffix == "beef"
        assert detector.alerts_emitted == 1

    def test_partial_match_not_flagged(self):
        detector = ImpersonationDetector()
        detector.observe(1, _Tx("0x" + "abcd" + "0" * 32 + "beef"))
        assert detector.observe(2, _Tx("0x" + "abcd" + "1" * 32 + "beee")) is None
        assert detector.observe(3, _Tx("0x" + "abce" + "2" * 32 + "beef")) is None

    def test_same_address_redeployment_not_flagged(self):
        detector = ImpersonationDetector()
        address = "0x" + "abcd" + "3" * 32 + "beef"
        detector.observe(1, _Tx(address))
        assert detector.observe(2, _Tx(address)) is None

    def test_registry_is_bounded_and_rolling(self):
        detector = ImpersonationDetector(known_contracts=3)
        victim = "0x" + "aaaa" + "0" * 32 + "bbbb"
        detector.observe(1, _Tx(victim))
        for i in range(3):  # evicts the victim from the 3-slot registry
            detector.observe(2, _Tx("0x" + f"{i:04x}" + "1" * 32 + f"{i + 8:04x}"))
        assert len(detector.known) == 3
        assert victim not in detector.known
        scam = "0x" + "aaaa" + "f" * 32 + "bbbb"
        assert detector.observe(9, _Tx(scam)) is None  # victim forgotten

    def test_derives_address_from_sender_and_nonce_when_receipt_absent(self):
        detector = ImpersonationDetector()
        sender, nonce = "0x" + "42" * 20, 11
        derived = create_address(sender, nonce)
        tx = _Tx(None, sender=sender, nonce=nonce)
        tx.contract_address = None
        detector.observe(1, tx)
        assert detector.known == (derived,)

    def test_state_round_trip(self):
        detector = ImpersonationDetector(known_contracts=4)
        detector.observe(1, _Tx("0x" + "abcd" + "0" * 32 + "beef"))
        detector.observe(2, _Tx("0x" + "abcd" + "1" * 32 + "beef", tx_hash="0x" + "33" * 32))
        restored = ImpersonationDetector(known_contracts=4)
        restored.restore(detector.state())
        assert restored.known == detector.known
        assert restored.observed == detector.observed
        assert restored.alerts_emitted == detector.alerts_emitted

    def test_restore_into_used_detector_rejected(self):
        detector = ImpersonationDetector()
        detector.observe(1, _Tx("0x" + "ab" * 20))
        with pytest.raises(ValueError):
            detector.restore({"known": [], "observed": 0, "alerts_emitted": 0})

    def test_validation(self):
        with pytest.raises(ValueError):
            ImpersonationDetector(known_contracts=0)
        with pytest.raises(ValueError):
            ImpersonationDetector(prefix_hex=0)
        with pytest.raises(ValueError):
            ImpersonationDetector(prefix_hex=30, suffix_hex=30)


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------


class TestMultiChainMonitor:
    def test_monitors_every_chain_through_one_service(self, detector):
        nodes = _nodes(3)
        with ScoringService(detector, node=nodes[0]) as service:
            monitor = MultiChainMonitor(service, nodes, config=_config())
            stats = monitor.run()
        assert len(stats.chains) == 3
        assert [chain.chain_id for chain in stats.chains] == [1, 2, 3]
        for chain in stats.chains:
            assert chain.blocks_scanned == N_CONFIRMED
        assert stats.blocks_scanned == 3 * N_CONFIRMED
        assert stats.alerts_emitted == sum(c.alerts_emitted for c in stats.chains)
        assert stats.service.requests == stats.contracts_scanned

    def test_merged_alerts_attributed_and_deterministic(self, detector):
        def run_once():
            nodes = _nodes(3)
            with ScoringService(detector, node=nodes[0]) as service:
                monitor = MultiChainMonitor(service, nodes, config=_config())
                monitor.run()
                return list(monitor.sink.alerts)

        first, second = run_once(), run_once()
        assert first == second
        assert len(first) > 0
        assert {alert.chain_id for alert in first} == {1, 2, 3}
        # Within each chain the merged stream preserves block order.
        by_chain = collections.defaultdict(list)
        for alert in first:
            by_chain[alert.chain_id].append(alert.block_number)
        for numbers in by_chain.values():
            assert numbers == sorted(numbers)

    def test_kill_resume_reproduces_merged_stream_bit_for_bit(self, detector, tmp_path):
        """The acceptance criterion: scheduling is cursor-driven, so a kill
        at an arbitrary cross-chain block count resumes the *merged* alert
        order exactly — not merely each chain's own order."""
        nodes = _nodes(3)
        with ScoringService(detector, node=nodes[0]) as service:
            monitor = MultiChainMonitor(service, nodes, config=_config())
            monitor.run()
            baseline = list(monitor.sink.alerts)

        for kill in [1, 7, 18, 30, 44]:
            workdir = tmp_path / f"kill-{kill}"
            nodes = _nodes(3)
            with ScoringService(detector, node=nodes[0]) as service:
                before_monitor = MultiChainMonitor(
                    service, nodes, config=_config(), checkpoint_dir=workdir
                )
                before_monitor.run(max_blocks=kill)
                before = list(before_monitor.sink.alerts)
            with ScoringService(detector, node=nodes[0]) as service:
                resumed = MultiChainMonitor(
                    service, nodes, config=_config(), checkpoint_dir=workdir
                )
                assert resumed.resumed
                resumed.run()
                after = list(resumed.sink.alerts)
            assert before + after == baseline, f"kill point {kill}"

    def test_impersonation_alerts_flow_through_merged_sink(self, detector):
        nodes = _nodes(2, impersonation_share=0.5, deploys_per_block=2.5)
        with ScoringService(detector, node=nodes[0]) as service:
            monitor = MultiChainMonitor(service, nodes, config=_config())
            stats = monitor.run()
        impersonations = [
            alert for alert in monitor.sink.alerts
            if isinstance(alert, ImpersonationAlert)
        ]
        assert impersonations, "the wave must surface in the merged stream"
        assert stats.impersonation_alerts == len(impersonations)
        assert {alert.chain_id for alert in impersonations} <= {1, 2}
        truth = {}
        for node in nodes:
            for number in range(N_CONFIRMED):
                for tx in node.get_block(number).transactions:
                    truth[(node.chain_id, tx.contract_address)] = tx.family
        for alert in impersonations:
            assert truth[(alert.chain_id, alert.contract_address)] == "address_impersonation"
            assert alert.matched_prefix == alert.impersonated_address[2:6]
            assert alert.matched_suffix == alert.impersonated_address[-4:]

    def test_impersonation_needs_no_bytecode(self):
        # The detector sees deployment metadata only: feeding it the full
        # wave with bytecode withheld still produces every alert.
        stream_config = BlockStreamConfig(
            seed=67, deploys_per_block=2.5, impersonation_share=0.5
        )
        blocks = BlockStream(stream_config).take(N_BLOCKS)
        detector = ImpersonationDetector(chain_id=stream_config.chain_id)
        alerts = []
        for block in blocks:
            for tx in block.transactions:
                stripped = _Tx(tx.contract_address, tx.tx_hash, tx.sender, tx.nonce)
                alert = detector.observe(block.number, stripped)
                if alert is not None:
                    alerts.append(alert)
        expected = sum(
            1 for block in blocks for tx in block.transactions
            if tx.family == "address_impersonation"
        )
        assert expected > 0
        assert len(alerts) >= expected  # every planted scam plus any chance hit

    def test_impersonation_registry_survives_restart(self, detector, tmp_path):
        """A restarted monitor keeps recognising pre-kill contracts: the
        two-lifetime impersonation alert sequence equals the uninterrupted
        one (kill points land both before and after the wave's victims)."""
        nodes = _nodes(2, impersonation_share=0.4, deploys_per_block=2.5)
        with ScoringService(detector, node=nodes[0]) as service:
            monitor = MultiChainMonitor(
                service, nodes, config=_config(), checkpoint_dir=tmp_path / "baseline"
            )
            monitor.run()
            baseline = [
                a for a in monitor.sink.alerts if isinstance(a, ImpersonationAlert)
            ]
        assert baseline, "the wave must produce impersonation alerts"
        for kill in [3, 11, 25]:
            workdir = tmp_path / f"seq-{kill}"
            nodes = _nodes(2, impersonation_share=0.4, deploys_per_block=2.5)
            with ScoringService(detector, node=nodes[0]) as service:
                first = MultiChainMonitor(
                    service, nodes, config=_config(), checkpoint_dir=workdir
                )
                first.run(max_blocks=kill)
                before = [
                    a for a in first.sink.alerts if isinstance(a, ImpersonationAlert)
                ]
            with ScoringService(detector, node=nodes[0]) as service:
                second = MultiChainMonitor(
                    service, nodes, config=_config(), checkpoint_dir=workdir
                )
                second.run()
                after = [
                    a for a in second.sink.alerts if isinstance(a, ImpersonationAlert)
                ]
            assert before + after == baseline, f"kill point {kill}"

    def test_per_tx_ordering_verdict_before_impersonation(self, detector):
        nodes = _nodes(2, impersonation_share=0.5, deploys_per_block=2.5)
        with ScoringService(detector, node=nodes[0]) as service:
            monitor = MultiChainMonitor(service, nodes, config=_config())
            monitor.run()
        last_seen = {}
        for position, alert in enumerate(monitor.sink.alerts):
            key = (alert.chain_id, alert.tx_hash)
            if isinstance(alert, Alert):
                assert key not in last_seen
                last_seen[key] = position
            else:  # an impersonation alert for an already-flagged tx follows it
                if key in last_seen:
                    assert position > last_seen[key]

    def test_duplicate_or_missing_chain_ids_rejected(self, detector):
        nodes = _nodes(2)
        clash = _mine(BlockStreamConfig(seed=99, chain_id=nodes[0].chain_id))
        with ScoringService(detector, node=nodes[0]) as service:
            with pytest.raises(ValueError):
                MultiChainMonitor(service, [*nodes, clash], config=_config())
            with pytest.raises(ValueError):
                MultiChainMonitor(service, [], config=_config())
            anonymous = SimulatedEthereumNode(chain_id=0)
            with pytest.raises(ValueError):
                MultiChainMonitor(service, [anonymous], config=_config())

    def test_from_scale_reads_multichain_knobs(self):
        scale = Scale(monitor_chains=5, monitor_shards=8, monitor_poll_blocks=3)
        config = MultiChainConfig.from_scale(scale)
        assert config.n_chains == 5
        assert config.n_shards == 8
        assert config.monitor.poll_blocks == 3

    def test_shard_routing_exposed_on_monitor(self, detector):
        nodes = _nodes(2)
        with ScoringService(detector, node=nodes[0]) as service:
            monitor = MultiChainMonitor(service, nodes, config=_config())
            assert monitor.shard_for(b"\x01\x02\x03") == shard_for(b"\x01\x02\x03", 4)

    def test_aggregate_stats_roll_up(self, detector):
        nodes = _nodes(2)
        with ScoringService(detector, node=nodes[0]) as service:
            monitor = MultiChainMonitor(service, nodes, config=_config())
            stats = monitor.run()
        assert stats.contracts_scanned == sum(c.contracts_scanned for c in stats.chains)
        assert stats.alert_rate == pytest.approx(
            stats.alerts_emitted / stats.contracts_scanned
        )
        assert stats.drift_windows == sum(c.drift_windows for c in stats.chains)
        assert stats.reorgs_detected == 0
