"""Equivalence tests: the vectorized sequence kernel vs. the disassembler.

The sequence kernel must reproduce the exact ``Disassembler`` token stream —
opcode values, byte offsets, immediate operands — for every bytecode,
including truncated PUSH tails, undefined opcodes, and empty inputs.  Seeded
random bytecodes exercise the property (with a larger ``slow``-marked
sweep); targeted cases pin the tricky edges.
"""

import numpy as np
import pytest

from repro.evm.disassembler import Disassembler
from repro.evm.errors import BytecodeFormatError
from repro.evm.fastcount import (
    INVALID_BIN,
    OpcodeSequence,
    count_opcodes,
    mnemonic_sequence,
    opcode_sequence,
    sequence_batch,
    sequence_many,
)


def random_bytecodes(n_cases: int = 200, seed: int = 20250726, max_length: int = 300):
    """Seeded random bytecodes biased towards the awkward encodings."""
    rng = np.random.default_rng(seed)
    cases = []
    for index in range(n_cases):
        kind = index % 4
        length = int(rng.integers(0, max_length))
        if kind == 0:
            # Uniform bytes: plenty of undefined opcodes and accidental PUSHes.
            body = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
        elif kind == 1:
            # PUSH-heavy: immediates frequently contain push-valued bytes.
            body = rng.integers(0x60, 0x80, size=length, dtype=np.uint8).tobytes()
        elif kind == 2:
            # Undefined-heavy: gaps of the Shanghai registry.
            body = rng.integers(0x0C, 0x10, size=length, dtype=np.uint8).tobytes()
        else:
            # Valid-looking code with a truncated PUSH tail.
            body = rng.integers(0, 0x60, size=length, dtype=np.uint8).tobytes()
            width = int(rng.integers(1, 33))
            tail = int(rng.integers(0, width))
            body += bytes([0x5F + width]) + bytes(tail)
        cases.append(body)
    return cases


def assert_sequence_matches_disassembler(code: bytes, sequence: OpcodeSequence):
    """The full reconstruction contract of :class:`OpcodeSequence`."""
    instructions = Disassembler().disassemble(code)
    assert len(sequence) == len(instructions)
    assert sequence.mnemonics() == [instr.mnemonic for instr in instructions]
    starts = sequence.starts()
    assert starts.tolist() == [instr.offset for instr in instructions]
    for index, instruction in enumerate(instructions):
        value = int(sequence.opcodes[index])
        width = int(sequence.widths[index])
        if 0x60 <= value <= 0x7F:
            operand = code[starts[index] + 1 : starts[index] + 1 + width]
        else:
            operand = None
            assert width == 0
        assert operand == instruction.operand, (code.hex(), index)
    assert np.array_equal(sequence.counts(), count_opcodes(code))


class TestSequenceEquivalence:
    def test_matches_disassembler_on_random_bytecodes(self):
        for code in random_bytecodes():
            assert_sequence_matches_disassembler(code, opcode_sequence(code))

    def test_batch_matches_single(self):
        codes = random_bytecodes(80, seed=7)
        sequences = sequence_batch(codes)
        assert len(sequences) == len(codes)
        for code, sequence in zip(codes, sequences):
            single = opcode_sequence(code)
            assert np.array_equal(sequence.opcodes, single.opcodes)
            assert np.array_equal(sequence.widths, single.widths)

    @pytest.mark.slow
    def test_matches_disassembler_on_large_random_sweep(self):
        codes = random_bytecodes(600, seed=99, max_length=4096)
        for code, sequence in zip(codes, sequence_batch(codes)):
            assert_sequence_matches_disassembler(code, sequence)

    def test_empty_inputs(self):
        for empty in (b"", "", "0x", "0X"):
            sequence = opcode_sequence(empty)
            assert len(sequence) == 0
            assert sequence.counts().sum() == 0
            assert mnemonic_sequence(empty) == []

    def test_hex_string_input(self):
        assert mnemonic_sequence("0x6080604052") == [
            "PUSH1", "PUSH1", "MSTORE",
        ]

    def test_malformed_hex_raises(self):
        with pytest.raises(BytecodeFormatError):
            opcode_sequence("0x123")

    def test_truncated_push_is_one_instruction(self):
        # PUSH32 with only 3 immediate bytes: one PUSH32 of width 3.
        code = bytes([0x7F, 0x60, 0x60, 0x60])
        sequence = opcode_sequence(code)
        assert sequence.mnemonics() == ["PUSH32"]
        assert sequence.widths.tolist() == [3]

    def test_push_immediates_are_skipped(self):
        code = bytes([0x60, 0x60, 0x00])
        sequence = opcode_sequence(code)
        assert sequence.mnemonics() == ["PUSH1", "STOP"]
        assert sequence.widths.tolist() == [1, 0]
        assert sequence.starts().tolist() == [0, 2]

    def test_undefined_bytes_fold_into_invalid(self):
        sequence = opcode_sequence(bytes([0x0C, 0x0D, 0xFE, 0xEF]))
        assert sequence.mnemonics() == ["INVALID"] * 4
        assert set(sequence.opcodes.tolist()) == {INVALID_BIN}
        assert sequence.widths.tolist() == [0, 0, 0, 0]

    def test_push0_has_no_immediate(self):
        sequence = opcode_sequence(bytes([0x5F, 0x01]))
        assert sequence.mnemonics() == ["PUSH0", "ADD"]
        assert sequence.widths.tolist() == [0, 0]

    def test_every_single_byte_value(self):
        disassembler = Disassembler()
        for value in range(256):
            code = bytes([value])
            assert mnemonic_sequence(code) == disassembler.mnemonics(code), hex(value)

    def test_sequence_many_accepts_hex_and_bytes(self):
        first, second = sequence_many(["0x6001", bytes([0x60, 0x01])])
        assert np.array_equal(first.opcodes, second.opcodes)
        assert np.array_equal(first.widths, second.widths)

    def test_sequence_many_empty(self):
        assert sequence_many([]) == []

    def test_batch_with_empty_codes_interleaved(self):
        codes = [b"", bytes([0x60, 0x01, 0x00]), b"", bytes([0x01])]
        sequences = sequence_batch(codes)
        assert [len(sequence) for sequence in sequences] == [0, 2, 0, 1]
        assert sequences[1].mnemonics() == ["PUSH1", "STOP"]
        assert sequences[3].mnemonics() == ["ADD"]
