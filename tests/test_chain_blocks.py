"""Tests for the deterministic block stream and the block-producing node."""

import numpy as np
import pytest

from repro.chain.blocks import (
    Block,
    BlockStream,
    BlockStreamConfig,
    GENESIS_PARENT_HASH,
    GENESIS_TIMESTAMP,
)
from repro.chain.contracts import ContractLabel
from repro.chain.rpc import SimulatedEthereumNode


@pytest.fixture(scope="module")
def config():
    return BlockStreamConfig(seed=11, deploys_per_block=2.5, phishing_share=0.3)


@pytest.fixture(scope="module")
def chain(config):
    return BlockStream(config).take(40)


class TestBlockStreamConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deploys_per_block": -1.0},
            {"phishing_share": 1.5},
            {"rate_profile": ()},
            {"phishing_profile": ()},
            {"blocks_per_phase": 0},
            {"block_time": 0},
            {"proxy_clone_share": -0.1},
            {"n_drainer_implementations": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BlockStreamConfig(**kwargs)

    def test_schedule_cycles_over_phases(self):
        config = BlockStreamConfig(
            deploys_per_block=2.0,
            rate_profile=(1.0, 3.0),
            phishing_share=0.2,
            phishing_profile=(1.0, 2.0),
            blocks_per_phase=10,
        )
        assert config.rate_at(5) == 2.0
        assert config.rate_at(15) == 6.0
        assert config.rate_at(25) == 2.0  # cycled back
        assert config.phishing_share_at(15) == pytest.approx(0.4)

    def test_phishing_share_clamped(self):
        config = BlockStreamConfig(phishing_share=0.8, phishing_profile=(5.0,))
        assert config.phishing_share_at(1) == 1.0


class TestBlockStream:
    def test_deterministic_across_instances(self, config, chain):
        other = BlockStream(BlockStreamConfig(seed=11, deploys_per_block=2.5, phishing_share=0.3))
        for mine, theirs in zip(chain, other.take(40)):
            assert mine == theirs

    def test_determinism_independent_of_access_order(self, config, chain):
        # Jumping straight to a deep block yields the same chain as walking.
        fresh = BlockStream(config)
        assert fresh.block(39) == chain[39]
        assert fresh.block(17) == chain[17]

    def test_genesis_shape(self, chain):
        genesis = chain[0]
        assert genesis.number == 0
        assert genesis.parent_hash == GENESIS_PARENT_HASH
        assert genesis.timestamp == GENESIS_TIMESTAMP
        assert genesis.transactions == ()

    def test_hash_linkage_and_timestamps(self, config, chain):
        for parent, child in zip(chain, chain[1:]):
            assert child.parent_hash == parent.block_hash
            assert child.timestamp == parent.timestamp + config.block_time

    def test_different_seeds_fork_the_chain(self, chain):
        other = BlockStream(BlockStreamConfig(seed=12, deploys_per_block=2.5, phishing_share=0.3))
        assert other.block(5).block_hash != chain[5].block_hash

    def test_deploys_carry_both_labels(self, chain):
        labels = {tx.label for block in chain for tx in block.transactions}
        assert labels == {ContractLabel.BENIGN, ContractLabel.PHISHING}

    def test_proxy_clones_duplicate_bytecode(self):
        # A clone-heavy phishing stream must produce bit-identical bytecodes.
        stream = BlockStream(
            BlockStreamConfig(
                seed=3,
                deploys_per_block=4.0,
                phishing_share=1.0,
                proxy_clone_share=1.0,
                n_drainer_implementations=2,
            )
        )
        codes = [tx.bytecode for block in stream.take(20) for tx in block.transactions]
        assert len(codes) > len(set(codes))

    def test_rate_profile_shifts_volume(self):
        quiet = BlockStream(BlockStreamConfig(seed=5, deploys_per_block=1.0))
        busy = BlockStream(BlockStreamConfig(seed=5, deploys_per_block=8.0))
        count = lambda blocks: sum(len(b.transactions) for b in blocks)
        assert count(busy.take(30)) > count(quiet.take(30))

    def test_phishing_profile_shifts_mix(self):
        stream = BlockStream(
            BlockStreamConfig(
                seed=6,
                deploys_per_block=6.0,
                phishing_share=0.1,
                phishing_profile=(1.0, 8.0),
                blocks_per_phase=25,
            )
        )
        blocks = stream.take(50)
        share = lambda part: np.mean(
            [tx.is_phishing for b in part for tx in b.transactions]
        )
        assert share(blocks[25:]) > share(blocks[:25])

    def test_negative_block_rejected(self, config):
        with pytest.raises(ValueError):
            BlockStream(config).block(-1)

    def test_take_requires_positive_count(self, config):
        with pytest.raises(ValueError):
            BlockStream(config).take(0)


class TestNodeChain:
    @pytest.fixture()
    def node(self, config, chain):
        node = SimulatedEthereumNode()
        node.mine(BlockStream(config), 40)
        return node

    def test_mine_appends_stream_blocks(self, node, chain):
        assert node.height == 39
        assert node.block_number() == 39
        assert node.get_block(7) == chain[7]

    def test_empty_chain_keeps_legacy_block_number(self):
        node = SimulatedEthereumNode()
        assert node.height is None
        assert node.block_number() == node.latest_block

    def test_appending_gap_rejected(self, chain):
        node = SimulatedEthereumNode()
        with pytest.raises(ValueError):
            node.append_block(chain[1])

    def test_appending_foreign_parent_rejected(self, chain):
        node = SimulatedEthereumNode()
        node.append_block(chain[0])
        impostor = Block(
            number=1,
            block_hash="0x" + "11" * 32,
            parent_hash="0x" + "22" * 32,
            timestamp=chain[1].timestamp,
            transactions=(),
        )
        with pytest.raises(ValueError):
            node.append_block(impostor)

    def test_deployed_contracts_served_by_get_code(self, node, chain):
        for block in chain[:10]:
            for tx in block.transactions:
                assert node.get_code(tx.contract_address) == tx.bytecode

    def test_get_block_by_number_envelope(self, node, chain):
        block = next(b for b in chain if b.transactions)
        payload = node.request("eth_getBlockByNumber", [hex(block.number), True])["result"]
        assert payload["hash"] == block.block_hash
        assert payload["parentHash"] == block.parent_hash
        assert int(payload["number"], 16) == block.number
        assert int(payload["timestamp"], 16) == block.timestamp
        tx_payload = payload["transactions"][0]
        tx = block.transactions[0]
        assert tx_payload["hash"] == tx.tx_hash
        assert tx_payload["to"] is None
        assert tx_payload["from"] == tx.sender
        assert bytes.fromhex(tx_payload["input"][2:]) == tx.bytecode

    def test_get_block_by_number_hashes_only(self, node, chain):
        block = next(b for b in chain if b.transactions)
        payload = node.request("eth_getBlockByNumber", [hex(block.number), False])["result"]
        assert payload["transactions"] == [tx.tx_hash for tx in block.transactions]

    def test_get_block_latest_and_earliest(self, node, chain):
        latest = node.request("eth_getBlockByNumber", ["latest", False])["result"]
        assert int(latest["number"], 16) == 39
        earliest = node.request("eth_getBlockByNumber", ["earliest", False])["result"]
        assert int(earliest["number"], 16) == 0

    def test_unknown_block_returns_null(self, node):
        assert node.request("eth_getBlockByNumber", ["0x1000", False])["result"] is None
        assert node.get_block(4096) is None

    def test_receipt_carries_contract_address(self, node, chain):
        block = next(b for b in chain if b.transactions)
        tx = block.transactions[0]
        receipt = node.get_receipt(tx.tx_hash)
        assert receipt["contractAddress"] == tx.contract_address
        assert int(receipt["blockNumber"], 16) == block.number
        assert receipt["status"] == "0x1"
        assert receipt["to"] is None

    def test_unknown_receipt_returns_null(self, node):
        assert node.get_receipt("0x" + "ab" * 32) is None
