"""Tests for the bytecode disassembler (the BDM core)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.evm.assembler import assemble, push
from repro.evm.disassembler import (
    Disassembler,
    disassemble,
    disassemble_mnemonics,
    format_listing,
    normalize_bytecode,
    total_static_gas,
)
from repro.evm.errors import BytecodeFormatError


class TestNormalizeBytecode:
    def test_accepts_bytes(self):
        assert normalize_bytecode(b"\x60\x80") == b"\x60\x80"

    def test_accepts_hex_with_prefix(self):
        assert normalize_bytecode("0x6080") == b"\x60\x80"

    def test_accepts_hex_without_prefix(self):
        assert normalize_bytecode("6080") == b"\x60\x80"

    def test_empty_string_is_empty_bytes(self):
        assert normalize_bytecode("0x") == b""

    def test_odd_length_hex_rejected(self):
        with pytest.raises(BytecodeFormatError):
            normalize_bytecode("0x608")

    def test_non_hex_rejected(self):
        with pytest.raises(BytecodeFormatError):
            normalize_bytecode("0xzz")

    def test_wrong_type_rejected(self):
        with pytest.raises(BytecodeFormatError):
            normalize_bytecode(1234)


class TestDisassembly:
    def test_paper_example(self):
        # The paper's example: 0x6080604052 -> PUSH1 0x80, PUSH1 0x40, MSTORE.
        instructions = disassemble("0x6080604052")
        assert [str(i) for i in instructions] == ["PUSH1 0x80", "PUSH1 0x40", "MSTORE"]
        assert [i.gas for i in instructions] == [3, 3, 3]

    def test_offsets_are_cumulative(self):
        instructions = disassemble("0x6080604052")
        assert [i.offset for i in instructions] == [0, 2, 4]

    def test_undefined_byte_is_invalid(self):
        instructions = disassemble(bytes([0x0C]))
        assert instructions[0].mnemonic == "INVALID"

    def test_truncated_push_operand(self):
        # PUSH32 with only 2 operand bytes available.
        instructions = disassemble(bytes([0x7F, 0xAA, 0xBB]))
        assert instructions[0].mnemonic == "PUSH32"
        assert instructions[0].operand == b"\xaa\xbb"

    def test_empty_bytecode(self):
        assert disassemble(b"") == []

    def test_mnemonics_helper(self):
        assert disassemble_mnemonics("0x6080604052") == ["PUSH1", "PUSH1", "MSTORE"]

    def test_jump_destinations(self):
        code = assemble(["JUMPDEST", push(1), "POP", "JUMPDEST", "STOP"])
        assert Disassembler().jump_destinations(code) == [0, 4]

    def test_operand_properties(self):
        instruction = disassemble(bytes([0x61, 0x01, 0x02]))[0]
        assert instruction.operand_hex == "0x0102"
        assert instruction.operand_int == 0x0102
        assert instruction.size == 3
        assert instruction.end_offset == 3

    def test_record_format_matches_bdm(self):
        record = disassemble("0x52")[0].to_record()
        assert record == {"offset": 0, "mnemonic": "MSTORE", "operand": "NaN", "gas": 3}

    def test_invalid_record_gas_is_nan_string(self):
        record = disassemble(bytes([0xFE]))[0].to_record()
        assert record["gas"] == "NaN"

    def test_total_static_gas(self):
        assert total_static_gas(disassemble("0x6080604052")) == 9

    def test_format_listing(self):
        listing = format_listing(disassemble("0x6080604052"))
        assert "PUSH1 0x80" in listing
        assert listing.count("\n") == 2


class TestRoundTripProperties:
    @given(
        st.lists(
            st.sampled_from(["ADD", "MSTORE", "CALLER", "POP", "JUMPDEST", "STOP", "SLOAD"]),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_assemble_disassemble_roundtrip_simple(self, mnemonics):
        code = assemble(mnemonics)
        assert disassemble_mnemonics(code) == mnemonics

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_push_operands_roundtrip(self, values):
        items = [push(value, 4) for value in values]
        instructions = disassemble(assemble(items))
        assert [i.operand_int for i in instructions] == values

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_disassembly_covers_every_byte(self, blob):
        instructions = disassemble(blob)
        covered = sum(i.size for i in instructions)
        # The final PUSH may claim fewer operand bytes than declared, but
        # coverage never exceeds the input and never leaves a gap.
        assert covered == len(blob)

    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_offsets_strictly_increasing(self, blob):
        offsets = [i.offset for i in disassemble(blob)]
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
