"""Tests for the memmap corpus blob and the zero-copy span path.

Two families: the on-disk format contract of :class:`CorpusBlob` (magic /
version / index validation, idempotent appends, crash self-healing), and
the bit-identity of blob-backed extraction against the plain in-memory
path for every persistable view over every executor backend — the
acceptance pin of the zero-copy corpus plane.
"""

import struct

import numpy as np
import pytest

from repro.evm.fastcount import sequence_batch
from repro.features.batch import BatchFeatureService, content_key
from repro.features.corpus import (
    BLOB_HEADER_SIZE,
    BLOB_MAGIC,
    BLOB_VERSION,
    CorpusBlob,
    CorpusBlobError,
    extract_blob_spans,
)
from repro.features.store import corpus_fingerprint


def make_codes(n: int, seed: int = 0, max_len: int = 300):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=int(size), dtype=np.uint8).tobytes()
        for size in rng.integers(0, max_len, size=n)
    ]


class TestOnDiskFormat:
    def test_create_writes_header_and_empty_index(self, tmp_path):
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        raw = blob.path.read_bytes()
        assert raw[:16] == BLOB_MAGIC
        assert struct.unpack("<I", raw[16:20])[0] == BLOB_VERSION
        assert len(raw) == BLOB_HEADER_SIZE
        assert blob.index_path.exists()
        assert len(blob) == 0
        assert blob.data_bytes == 0

    def test_append_then_open_round_trips(self, tmp_path):
        codes = make_codes(25, seed=1)
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        added = blob.append(codes)
        unique = {content_key(code) for code in codes}
        assert added == len(unique)
        reopened = CorpusBlob.open(blob.path)
        assert len(reopened) == len(unique)
        for code in codes:
            assert reopened.code(content_key(code)) == code

    def test_append_is_idempotent_and_content_addressed(self, tmp_path):
        codes = make_codes(10, seed=2)
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        blob.append(codes)
        size = blob.path.stat().st_size
        assert blob.append(codes) == 0
        assert blob.append([codes[0], codes[0]]) == 0
        assert blob.path.stat().st_size == size

    def test_spans_are_absolute_offsets(self, tmp_path):
        codes = [b"\x60\x01", b"\x00\x01\x02"]
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        blob.append(codes)
        start, stop = blob.span(content_key(codes[0]))
        assert start == BLOB_HEADER_SIZE
        assert stop - start == len(codes[0])
        assert bytes(blob.view(start, stop)) == codes[0]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "corpus.blob"
        blob = CorpusBlob.create(path)
        blob.append(make_codes(3, seed=3))
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorpusBlobError):
            CorpusBlob.open(path)

    def test_stale_version_rejected(self, tmp_path):
        path = tmp_path / "corpus.blob"
        CorpusBlob.create(path)
        raw = bytearray(path.read_bytes())
        raw[16:20] = struct.pack("<I", BLOB_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(CorpusBlobError):
            CorpusBlob.open(path)

    def test_truncated_data_file_rejected(self, tmp_path):
        path = tmp_path / "corpus.blob"
        blob = CorpusBlob.create(path)
        blob.append(make_codes(5, seed=4, max_len=100))
        with open(path, "r+b") as handle:
            handle.truncate(blob.data_size - 1)
        with pytest.raises(CorpusBlobError):
            CorpusBlob.open(path)

    def test_missing_index_rejected(self, tmp_path):
        path = tmp_path / "corpus.blob"
        blob = CorpusBlob.create(path)
        blob.index_path.unlink()
        with pytest.raises(CorpusBlobError):
            CorpusBlob.open(path)

    def test_dead_bytes_from_crashed_append_are_overwritten(self, tmp_path):
        # Simulate a crash between the data write and the index rewrite:
        # garbage past data_size must be ignored on open and reclaimed by
        # the next append.
        path = tmp_path / "corpus.blob"
        blob = CorpusBlob.create(path)
        blob.append([b"\x60\x01"])
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")
        reopened = CorpusBlob.open(path)
        code = b"\x00\x01"
        reopened.append([code])
        assert reopened.code(content_key(code)) == code
        final = CorpusBlob.open(path)
        assert final.data_size == path.stat().st_size

    def test_for_corpus_builds_once_and_reuses(self, tmp_path):
        codes = make_codes(12, seed=5)
        fingerprint = corpus_fingerprint(codes)
        blob = CorpusBlob.for_corpus(tmp_path, codes, fingerprint)
        assert blob.path.name == f"corpus-{fingerprint}.blob"
        mtime = blob.path.stat().st_mtime_ns
        again = CorpusBlob.for_corpus(tmp_path, codes, fingerprint)
        assert again.path == blob.path
        assert blob.path.stat().st_mtime_ns == mtime

    def test_for_corpus_rebuilds_corrupt_blob(self, tmp_path):
        codes = make_codes(6, seed=6)
        fingerprint = corpus_fingerprint(codes)
        blob = CorpusBlob.for_corpus(tmp_path, codes, fingerprint)
        blob.path.write_bytes(b"not a blob at all")
        rebuilt = CorpusBlob.for_corpus(tmp_path, codes, fingerprint)
        for code in codes:
            assert rebuilt.code(content_key(code)) == code

    def test_view_bounds_checked(self, tmp_path):
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        blob.append([b"\x00\x01\x02"])
        with pytest.raises(CorpusBlobError):
            blob.view(0, 4)
        with pytest.raises(CorpusBlobError):
            blob.view(BLOB_HEADER_SIZE, blob.data_size + 1)


class TestSpanExtraction:
    def test_contiguous_spans_are_zero_copy(self, tmp_path):
        codes = [b"\x60\x01", b"\x00", b"\x01\x02\x03"]
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        blob.append(codes)
        spans = [blob.span(content_key(code)) for code in codes]
        buffer, lengths = blob.spans_buffer(spans)
        assert buffer.base is not None  # a view into the memmap, not a copy
        assert lengths.tolist() == [2, 1, 3]

    def test_gather_path_for_non_contiguous_spans(self, tmp_path):
        codes = [b"\x60\x01", b"\x00", b"\x01\x02\x03"]
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        blob.append(codes)
        spans = [blob.span(content_key(code)) for code in (codes[2], codes[0])]
        buffer, lengths = blob.spans_buffer(spans)
        assert bytes(buffer) == codes[2] + codes[0]
        assert lengths.tolist() == [3, 2]

    def test_extract_matches_batch_kernels(self, tmp_path):
        codes = make_codes(40, seed=7)
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        blob.append(codes)
        unique, seen = [], set()
        for code in codes:
            key = content_key(code)
            if key not in seen:
                seen.add(key)
                unique.append(code)
        spans = [blob.span(content_key(code)) for code in unique]
        expected = sequence_batch(unique)
        for got, want in zip(blob.extract(spans, "sequences").split(), expected):
            assert np.array_equal(got.opcodes, want.opcodes)
            assert np.array_equal(got.widths, want.widths)
        matrix = blob.extract(spans, "counts")
        for row, want in zip(matrix, expected):
            assert np.array_equal(row, want.counts())

    def test_extract_rejects_unknown_kind(self, tmp_path):
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        with pytest.raises(ValueError):
            blob.extract([], "histograms")

    def test_worker_entry_point_reopens_after_append(self, tmp_path):
        # extract_blob_spans caches blobs per process; a span past the
        # cached mapping (the parent appended since) must remap, not fail.
        first, second = make_codes(2, seed=8, max_len=50)
        blob = CorpusBlob.create(tmp_path / "corpus.blob")
        blob.append([first])
        span1 = blob.span(content_key(first))
        extract_blob_spans(str(blob.path), [span1], "counts")
        blob.append([second])
        span2 = blob.span(content_key(second))
        matrix = extract_blob_spans(str(blob.path), [span2], "counts")
        assert np.array_equal(matrix[0], sequence_batch([second])[0].counts())


class TestServiceBitIdentity:
    """Blob-backed extraction vs. the in-memory path, over all executors."""

    EXECUTORS = [("thread", None), ("thread", 3), ("process", 2)]

    @pytest.fixture()
    def corpus(self):
        codes = make_codes(30, seed=9)
        return codes + codes[:5]  # duplicates exercise dedup

    @pytest.fixture()
    def blob(self, tmp_path, corpus):
        return CorpusBlob.for_corpus(tmp_path, corpus, corpus_fingerprint(corpus))

    @pytest.mark.parametrize("executor,workers", EXECUTORS)
    def test_all_persistable_views_bit_identical(
        self, corpus, blob, executor, workers
    ):
        reference = BatchFeatureService()
        ref_counts = reference.count_matrix(corpus)
        ref_sequences = reference.sequences(corpus)
        ref_ngrams = reference.ngram_codes_batch(corpus, 2)
        ref_analysis = reference.analysis_matrix(corpus)
        service = BatchFeatureService(
            executor=executor,
            max_workers=workers,
            corpus_blob=blob,
            span_chunk_size=8,
        )
        try:
            assert np.array_equal(service.count_matrix(corpus), ref_counts)
            for got, want in zip(service.sequences(corpus), ref_sequences):
                assert np.array_equal(got.opcodes, want.opcodes)
                assert np.array_equal(got.widths, want.widths)
            for got, want in zip(
                service.ngram_codes_batch(corpus, 2), ref_ngrams
            ):
                assert np.array_equal(got, want)
            assert np.array_equal(service.analysis_matrix(corpus), ref_analysis)
            assert service.kernel_passes == reference.kernel_passes
        finally:
            service.close()

    def test_no_cache_blob_counts_bit_identical(self, corpus, blob):
        reference = BatchFeatureService()
        ref_counts = reference.count_matrix(corpus)
        service = BatchFeatureService(cache_size=0, corpus_blob=blob)
        assert np.array_equal(service.count_matrix(corpus), ref_counts)

    def test_blob_misses_fall_back_to_byte_path(self, tmp_path, corpus):
        # A blob covering only part of the corpus: indexed keys take spans,
        # the rest the pickled-chunk path, results merge bit-identically.
        half = corpus[: len(corpus) // 2]
        blob = CorpusBlob.for_corpus(tmp_path, half, corpus_fingerprint(half))
        reference = BatchFeatureService()
        service = BatchFeatureService(corpus_blob=blob)
        assert np.array_equal(
            service.count_matrix(corpus), reference.count_matrix(corpus)
        )

    def test_attach_blob_after_construction(self, corpus, blob):
        reference = BatchFeatureService()
        service = BatchFeatureService()
        service.attach_blob(blob)
        assert service.corpus_blob is blob
        assert np.array_equal(
            service.count_matrix(corpus), reference.count_matrix(corpus)
        )
