"""Tests for the simulated Etherscan explorer, BigQuery index and RPC node."""

import pytest

from repro.chain.bigquery import SimulatedBigQueryIndex
from repro.chain.contracts import ContractLabel, DeploymentMonth
from repro.chain.errors import RPCError, UnknownContractError
from repro.chain.explorer import PHISH_HACK_TAG, SimulatedExplorer
from repro.chain.rpc import INVALID_PARAMS, METHOD_NOT_FOUND, SimulatedEthereumNode


@pytest.fixture(scope="module")
def services(corpus_module):
    records = corpus_module.records
    return (
        SimulatedBigQueryIndex.from_records(records),
        SimulatedExplorer.from_records(records),
        SimulatedEthereumNode.from_records(records),
        records,
    )


@pytest.fixture(scope="module")
def corpus_module():
    from repro.chain.generator import CorpusConfig, generate_corpus

    return generate_corpus(CorpusConfig(n_phishing=80, n_benign=50, seed=13))


class TestExplorer:
    def test_indexes_every_record(self, services):
        _, explorer, _, records = services
        assert len(explorer) == len(records)

    def test_phishing_records_are_flagged(self, services):
        _, explorer, _, records = services
        phishing = next(r for r in records if r.is_phishing)
        entry = explorer.lookup(phishing.address)
        assert entry.tag == PHISH_HACK_TAG
        assert entry.is_flagged

    def test_benign_records_not_flagged(self, services):
        _, explorer, _, records = services
        benign = next(r for r in records if not r.is_phishing)
        assert not explorer.lookup(benign.address).is_flagged

    def test_label_of_matches_ground_truth(self, services):
        _, explorer, _, records = services
        for record in records[:30]:
            assert explorer.label_of(record.address) is record.label

    def test_unknown_address_raises(self, services):
        _, explorer, _, _ = services
        with pytest.raises(UnknownContractError):
            explorer.lookup("0x" + "00" * 20)

    def test_scrape_defaults_unknown_to_benign(self, services):
        _, explorer, _, _ = services
        labels = explorer.scrape(["0x" + "00" * 20])
        assert list(labels.values()) == [ContractLabel.BENIGN]

    def test_flagged_addresses_count(self, services):
        _, explorer, _, records = services
        assert len(explorer.flagged_addresses()) == sum(r.is_phishing for r in records)

    def test_lookup_counter_increments(self, services):
        _, explorer, _, records = services
        before = explorer.lookup_count
        explorer.lookup(records[0].address)
        assert explorer.lookup_count == before + 1


class TestBigQueryIndex:
    def test_indexes_every_record(self, services):
        index, _, _, records = services
        assert len(index) == len(records)

    def test_window_query_filters_months(self, services):
        index, _, _, _ = services
        window = index.query_window(DeploymentMonth(2024, 5), DeploymentMonth(2024, 7))
        assert all(
            DeploymentMonth(2024, 5) <= row.deployed_month and row.deployed_month <= DeploymentMonth(2024, 7)
            for row in window
        )

    def test_limit_samples_subset(self, services):
        index, _, _, _ = services
        sampled = index.query_window(DeploymentMonth(2023, 10), DeploymentMonth(2024, 10), limit=10, seed=1)
        assert len(sampled) == 10

    def test_limit_larger_than_window_returns_all(self, services):
        index, _, _, records = services
        rows = index.query_window(DeploymentMonth(2023, 10), DeploymentMonth(2024, 10), limit=10**6)
        assert len(rows) == len(records)

    def test_sampling_is_deterministic(self, services):
        index, _, _, _ = services
        a = index.query_window(DeploymentMonth(2023, 10), DeploymentMonth(2024, 10), limit=20, seed=3)
        b = index.query_window(DeploymentMonth(2023, 10), DeploymentMonth(2024, 10), limit=20, seed=3)
        assert [r.address for r in a] == [r.address for r in b]


class TestRPCNode:
    def test_get_code_roundtrip(self, services):
        _, _, node, records = services
        record = records[0]
        assert node.get_code(record.address) == record.bytecode

    def test_unknown_address_returns_empty_code(self, services):
        _, _, node, _ = services
        assert node.get_code("0x" + "00" * 20) == b""
        assert not node.has_code("0x" + "00" * 20)

    def test_has_code_for_known_contract(self, services):
        _, _, node, records = services
        assert node.has_code(records[0].address)

    def test_jsonrpc_envelope(self, services):
        _, _, node, records = services
        response = node.request("eth_getCode", [records[0].address, "latest"])
        assert response["jsonrpc"] == "2.0"
        assert response["result"].startswith("0x")

    def test_chain_id_and_block_number(self, services):
        _, _, node, _ = services
        assert node.request("eth_chainId")["result"] == "0x1"
        assert int(node.request("eth_blockNumber")["result"], 16) == node.latest_block

    def test_unknown_method_is_rpc_error(self, services):
        _, _, node, _ = services
        response = node.request("eth_call", [])
        assert response["error"]["code"] == -32601

    def test_invalid_address_is_rpc_error(self, services):
        _, _, node, _ = services
        response = node.request("eth_getCode", ["nonsense"])
        assert response["error"]["code"] == -32602

    def test_get_code_raises_on_invalid_address(self, services):
        _, _, node, _ = services
        with pytest.raises(RPCError):
            node.get_code("nonsense")

    def test_missing_params_is_rpc_error(self, services):
        _, _, node, _ = services
        response = node.request("eth_getCode", [])
        assert "error" in response


class TestRPCErrorShape:
    """Regression: the JSON-RPC error envelope of every endpoint.

    Error codes must match the spec constants (``METHOD_NOT_FOUND`` /
    ``INVALID_PARAMS``), unknown-method errors must carry the offending
    method name, and every error response must keep the ``jsonrpc`` / ``id``
    envelope fields — the shapes a real client would branch on.
    """

    @pytest.fixture()
    def node(self):
        return SimulatedEthereumNode()

    @pytest.mark.parametrize("method", ["eth_call", "eth_sendRawTransaction", "net_version"])
    def test_unknown_method_carries_method_name(self, node, method):
        response = node.request(method, [])
        assert response["jsonrpc"] == "2.0"
        assert response["id"] == node.request_count
        assert "result" not in response
        assert response["error"]["code"] == METHOD_NOT_FOUND
        assert method in response["error"]["message"]

    @pytest.mark.parametrize(
        "method, params",
        [
            ("eth_getCode", []),
            ("eth_getCode", ["not-an-address"]),
            ("eth_getCode", ["0x1234"]),
            ("eth_getBlockByNumber", []),
            ("eth_getBlockByNumber", ["not-a-number", False]),
            ("eth_getBlockByNumber", ["-5", False]),
            ("eth_getTransactionReceipt", []),
        ],
    )
    def test_invalid_params_shape(self, node, params, method):
        response = node.request(method, params)
        assert response["jsonrpc"] == "2.0"
        assert "result" not in response
        assert response["error"]["code"] == INVALID_PARAMS
        assert response["error"]["message"]

    @pytest.mark.parametrize(
        "method, params",
        [
            ("eth_chainId", []),
            ("eth_blockNumber", []),
            ("eth_getCode", ["0x" + "00" * 20]),
            ("eth_getBlockByNumber", ["latest", False]),
            ("eth_getTransactionReceipt", ["0x" + "00" * 32]),
        ],
    )
    def test_valid_requests_have_no_error(self, node, params, method):
        response = node.request(method, params)
        assert "error" not in response
        assert "result" in response

    def test_chain_id_reflects_configuration(self):
        node = SimulatedEthereumNode(chain_id=11155111)  # Sepolia
        assert node.request("eth_chainId")["result"] == hex(11155111)

    def test_wrapper_raises_typed_error_with_code(self, node):
        with pytest.raises(RPCError) as excinfo:
            node.get_code("nonsense")
        assert excinfo.value.code == INVALID_PARAMS
