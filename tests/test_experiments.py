"""Tests for the experiment drivers (one per table/figure)."""

import numpy as np
import pytest

from repro.core.mem import ModelEvaluationModule
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import FIG3_OPCODES, run_fig3
from repro.experiments.hpo_search import run_hpo
from repro.experiments.interpretability import run_fig9
from repro.experiments.posthoc import run_posthoc
from repro.experiments.scalability import SPLIT_RATIOS, run_scalability
from repro.experiments.table1 import run_table1, summarize_table1
from repro.experiments.table2 import run_table2
from repro.experiments.time_resistance import run_time_resistance
from repro.core.dataset import build_temporal_split


class TestTable1:
    def test_full_table_has_144_rows(self):
        assert len(run_table1()) == 144

    def test_limit(self):
        assert len(run_table1(limit=5)) == 5

    def test_summary_matches_paper_facts(self):
        summary = summarize_table1()
        assert summary["n_opcodes"] == 144
        assert summary["first"]["name"] == "STOP"
        assert summary["last"]["name"] == "SELFDESTRUCT"
        assert summary["selfdestruct_gas"] == 5000
        assert summary["add_gas"] == 3
        assert summary["mul_gas"] == 5
        assert summary["has_push0"] and summary["has_invalid"]


class TestFig2:
    def test_series_structure(self, smoke_scale, corpus):
        series = run_fig2(smoke_scale, corpus)
        assert series.total_obtained == len(corpus.phishing)
        assert series.total_unique <= series.total_obtained
        assert series.duplication_ratio >= 1.0
        assert len(series.rows()) == len(series.months)

    def test_obtained_always_at_least_unique_per_month(self, smoke_scale, corpus):
        series = run_fig2(smoke_scale, corpus)
        for row in series.rows():
            assert row["obtained"] >= row["unique"]


class TestFig3:
    def test_usage_distribution_shapes(self, dataset):
        distribution = run_fig3(dataset)
        assert distribution.opcodes == list(FIG3_OPCODES)
        summaries = distribution.summaries()
        assert len(summaries) == 20
        assert all(s.benign_mean >= 0 and s.phishing_mean >= 0 for s in summaries)

    def test_paper_claim_no_single_opcode_separates(self, dataset):
        distribution = run_fig3(dataset)
        assert distribution.no_single_opcode_separates()

    def test_custom_opcode_list(self, dataset):
        distribution = run_fig3(dataset, opcodes=["PUSH1", "MSTORE"])
        assert distribution.opcodes == ["PUSH1", "MSTORE"]


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, dataset, smoke_scale):
        return run_table2(
            dataset, smoke_scale, model_names=["Random Forest", "Logistic Regression", "ESCORT"]
        )

    def test_rows_and_render(self, result):
        rows = result.rows()
        assert len(rows) == 3
        assert "Random Forest" in result.render()

    def test_family_means(self, result):
        means = result.family_means("accuracy")
        assert "histogram" in means and "vulnerability" in means

    def test_shape_checks(self, result):
        checks = result.shape_checks()
        assert checks["best_is_hsc"]
        assert checks["escort_is_weakest"]


class TestPostHocExperiment:
    def test_report_rendering_and_fractions(self, dataset, smoke_scale):
        suite = ModelEvaluationModule(scale=smoke_scale).evaluate_suite(
            ["Random Forest", "Logistic Regression", "k-NN"], dataset
        )
        experiment = run_posthoc(suite)
        assert len(experiment.table3_rows()) == 4
        assert "Metric" in experiment.render_table3()
        matrix = experiment.dunn_matrix("accuracy")
        assert matrix.shape == (3, 3)
        fractions = experiment.significant_fractions()
        assert set(fractions) == {"accuracy", "f1", "precision", "recall"}
        checks = experiment.shape_checks()
        assert set(checks) == {"all_metrics_reject", "cross_family_more_significant"}


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self, dataset, smoke_scale):
        return run_scalability(
            dataset, smoke_scale, model_names=["Random Forest", "k-NN", "Logistic Regression"]
        )

    def test_cells_cover_grid(self, result):
        assert len(result.cells) == 3 * len(SPLIT_RATIOS)

    def test_series_lengths(self, result):
        assert len(result.metric_series("Random Forest", "accuracy")) == 3
        assert len(result.time_series("Random Forest")) == 3

    def test_rows(self, result):
        assert len(result.fig5_rows()) == 9
        assert len(result.fig7_rows()) == 9

    def test_cdd_and_cliffs(self, result):
        cdd = result.critical_difference("accuracy")
        assert set(cdd.average_ranks) == {"Random Forest", "k-NN", "Logistic Regression"}
        deltas = result.cliffs_deltas("accuracy")
        assert len(deltas) == 3
        assert all(-1.0 <= value <= 1.0 for value in deltas.values())

    def test_unknown_cell(self, result):
        with pytest.raises(KeyError):
            result.cell("Random Forest", 0.42)


class TestTimeResistance:
    def test_curves_and_aut(self, corpus, smoke_scale):
        split = build_temporal_split(corpus.records, seed=0)
        result = run_time_resistance(split, smoke_scale, model_names=["Random Forest"])
        assert result.periods == [period for period, _ in split.test_periods]
        curve = result.f1_curve("Random Forest")
        assert len(curve.values) == len(result.periods)
        aut = result.aut()["Random Forest"]
        assert 0.0 <= aut <= 1.0
        assert len(result.fig8_rows()) == len(result.periods)


class TestFig9:
    def test_shap_analysis(self, dataset, smoke_scale):
        result = run_fig9(dataset, smoke_scale, n_explained=8, n_permutations=3, top_k=10)
        assert len(result.top_opcodes) == 10
        rows = result.fig9_rows(k=5)
        assert len(rows) == 5
        assert all(row["mean_abs_shap"] >= 0 for row in rows)
        assert all(0.0 <= row["pushes_towards_phishing"] <= 1.0 for row in rows)
        assert set(result.top_opcodes) <= set(result.feature_names)


class TestHPOExperiment:
    def test_knn_search(self, dataset, smoke_scale):
        result = run_hpo(dataset, "k-NN", n_trials=4, scale=smoke_scale)
        assert 0.5 <= result.best_value <= 1.0
        assert "n_neighbors" in result.best_params
        assert result.n_trials == 4

    def test_unknown_model_rejected(self, dataset, smoke_scale):
        with pytest.raises(KeyError):
            run_hpo(dataset, "SCSGuard", scale=smoke_scale)
