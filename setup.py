"""Legacy setup shim so that `pip install -e .` works offline (no wheel pkg)."""
from setuptools import setup

setup()
