"""Bench: thread vs process extraction backend over the bench corpus.

Runs the cold multi-view extraction (sequences + counts) of every corpus
bytecode on both ``BatchFeatureService`` executor backends, asserting
bit-identical matrices and equal kernel-pass accounting.  Throughput is
printed for both; no relative speed is asserted — the process backend pays
fork + pickle overhead that only amortises on multi-core machines and
multi-GB corpora, and CI may be single-core.
"""

import numpy as np

from conftest import best_time

from repro.features.batch import BatchFeatureService


def extract_all(service, bytecodes):
    service.cache_clear()
    service.sequences(bytecodes)
    return service.count_matrix(bytecodes)


def test_bench_extraction_executor_backends(benchmark, corpus):
    bytecodes = [record.bytecode for record in corpus.records]

    thread = BatchFeatureService(
        cache_size=len(bytecodes), max_workers=4, chunk_size=32
    )
    process = BatchFeatureService(
        cache_size=len(bytecodes), max_workers=4, chunk_size=32, executor="process"
    )

    thread_time, thread_matrix = best_time(lambda: extract_all(thread, bytecodes))
    process_time, process_matrix = benchmark.pedantic(
        lambda: best_time(lambda: extract_all(process, bytecodes)),
        rounds=1,
        iterations=1,
    )

    assert np.array_equal(thread_matrix, process_matrix)
    assert thread.kernel_passes == process.kernel_passes

    total_bytes = sum(len(code) for code in bytecodes)
    print(
        f"\n[executor] {len(bytecodes)} contracts ({total_bytes / 1e6:.1f} MB): "
        f"thread {thread_time:.4f}s "
        f"({len(bytecodes) / thread_time:,.0f}/s), "
        f"process {process_time:.4f}s "
        f"({len(bytecodes) / process_time:,.0f}/s)"
    )
