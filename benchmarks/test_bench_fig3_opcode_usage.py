"""Bench: Fig. 3 — opcode-usage distributions of benign vs phishing contracts."""

from repro.experiments.fig3 import run_fig3


def test_bench_fig3_opcode_usage(benchmark, dataset):
    distribution = benchmark(run_fig3, dataset)
    summaries = distribution.summaries()
    assert len(summaries) == 20
    # The paper's observation: classes overlap; no single opcode separates them.
    assert distribution.no_single_opcode_separates()
    print("\n[Fig. 3] opcode          benign-mean  phishing-mean")
    for summary in summaries:
        print(f"  {summary.opcode:16s} {summary.benign_mean:10.2f}  {summary.phishing_mean:12.2f}")
