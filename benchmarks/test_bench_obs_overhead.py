"""Bench: observability-plane overhead on the warm serving hot path.

The obs tentpole's acceptance bar: serving with the real
:class:`~repro.obs.MetricsRegistry` (flush counters, batch-size and
model-pass histograms, scrape collectors registered) must stay within 10%
of the uninstrumented path (:class:`~repro.obs.NullRegistry`, no active
trace).  Both arms drive the identical duplicate-heavy per-request stream
through a warm :class:`~repro.serving.ScoringService`.

Two further costs are measured and reported (not pinned to the 0.9x bar,
because they are *opt-in* per request at this layer):

* **per-request tracing** — what a gateway pays to wrap every request in a
  fresh :class:`~repro.obs.Trace` (create, activate, slow-log check).  At
  the raw service layer this is microseconds against a ~10 µs cache hit;
  behind real HTTP handling (~100 µs/request) it amortises to a few
  percent, which is why the gateway keeps traces always-on for
  ``/debug/slow``.
* **scrape cost** — one full ``/metrics`` render through every registered
  collector, the price a Prometheus poller pays off the request path.
"""

import time

import numpy as np

from conftest import best_time
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.obs import MetricsRegistry, NullRegistry, SlowRequestLog
from repro.obs import trace as obs_trace
from repro.obs.bridge import feature_collector, service_collector
from repro.serving import ScoringService, ServingConfig


def _request_stream(dataset, n_requests: int = 400, seed: int = 9):
    """A duplicate-heavy request stream drawn from the bench dataset."""
    rng = np.random.default_rng(seed)
    codes = dataset.bytecodes
    picks = rng.integers(0, max(1, len(codes) // 4), size=n_requests)
    return [codes[int(i)] for i in picks]


def _interleaved_best(passes, rounds: int = 7):
    """Best wall clock per arm, arms interleaved round-robin.

    Timing the arms back-to-back lets one noisy scheduling period land
    entirely on one arm and skew the ratio; cycling
    ``uninstrumented → instrumented → traced`` each round spreads machine
    noise evenly, and best-of-rounds then discards it.
    """
    best = [float("inf")] * len(passes)
    for _ in range(rounds):
        for index, one_pass in enumerate(passes):
            start = time.perf_counter()
            one_pass()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def test_bench_obs_overhead(benchmark, dataset):
    features = BatchFeatureService()
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = features
    detector.fit(dataset.bytecodes, dataset.labels)

    requests = _request_stream(dataset)
    config = ServingConfig(max_batch=64)

    def warm_service(registry):
        service = ScoringService(detector, config=config, registry=registry)
        service.score_batch(requests)  # fill the verdict cache
        return service

    # Arm 1 — uninstrumented: no-op instruments, no collectors, no trace.
    null_service = warm_service(NullRegistry())

    def uninstrumented_pass():
        for code in requests:
            null_service.score(code)

    # Arm 2 — instrumented: live registry, identical driving code.
    registry = MetricsRegistry()
    service = warm_service(registry)

    def instrumented_pass():
        for code in requests:
            service.score(code)

    # Reported extra: always-on per-request tracing (the gateway's cost).
    slow_log = SlowRequestLog(capacity=32, threshold_ms=250.0)

    def traced_pass():
        for code in requests:
            trace = obs_trace.new_trace()
            with obs_trace.activate(trace):
                service.score(code)
            slow_log.record(trace, "/score/bytecode", 200)

    benchmark.pedantic(instrumented_pass, rounds=3, iterations=1)
    null_time, instrumented_time, traced_time = _interleaved_best(
        [uninstrumented_pass, instrumented_pass, traced_pass]
    )
    null_service.close()

    # Reported extra: one full /metrics render through the scrape collectors.
    registry.register_collector("serving", service_collector(service))
    registry.register_collector("features", feature_collector(lambda: features))
    scrape_time, exposition = best_time(registry.render, repeats=5)
    service.close()
    assert "repro_serving_flushes_total" in exposition

    n = len(requests)
    null_rps = n / null_time
    instrumented_rps = n / instrumented_time
    traced_rps = n / traced_time
    trace_us = (traced_time - instrumented_time) / n * 1e6
    print(
        f"\n[obs] {n} warm requests: uninstrumented {null_rps:,.0f} req/s, "
        f"instrumented {instrumented_rps:,.0f} req/s "
        f"({instrumented_rps / null_rps:.2f}x), "
        f"traced {traced_rps:,.0f} req/s "
        f"(+{trace_us:.1f} µs/request for trace+slow-log); "
        f"/metrics render {scrape_time * 1e3:.2f} ms "
        f"({len(exposition.splitlines())} lines)"
    )

    # The acceptance criterion: registry instrumentation costs <= 10%.
    assert instrumented_rps >= 0.9 * null_rps
    # Always-on tracing is pricier per request but must stay bounded: the
    # full trace+activate+slow-log wrapper may at most halve raw hot-path
    # throughput (it amortises to a few percent behind real HTTP).
    assert traced_rps >= 0.5 * null_rps
