"""Bench (ablation): §IV-C — Optuna-style hyperparameter search for an HSC."""

from conftest import run_once

from repro.experiments.hpo_search import run_hpo


def test_bench_hpo_random_forest(benchmark, dataset, scale):
    result = run_once(benchmark, run_hpo, dataset, "Random Forest", 4, scale)
    assert 0.5 <= result.best_value <= 1.0
    print(f"\n[HPO] Random Forest best CV accuracy={result.best_value:.3f} "
          f"params={result.best_params} over {result.n_trials} trials")
