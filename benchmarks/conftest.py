"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
("bench") scale so the whole harness completes on a CPU-only machine.  The
corpus is served through the on-disk cache under ``benchmarks/.corpus_cache``
(:func:`repro.chain.corpus_cache.load_or_generate`) and, like the dataset,
built once per session; heavyweight experiments are executed exactly once
inside ``benchmark.pedantic(rounds=1)``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.chain.corpus_cache import load_or_generate
from repro.chain.generator import CorpusConfig
from repro.core.config import Scale
from repro.core.dataset import PhishingDataset
from repro.models.registry import DeepModelScale

#: Where the bench-scale corpus is cached between benchmark runs.
CORPUS_CACHE_DIR = Path(__file__).parent / ".corpus_cache"


def pytest_collection_modifyitems(config, items):
    """Tag every benchmark with the opt-in ``bench`` marker (see pytest.ini).

    The hook receives the session-wide item list (even from a directory
    conftest), so in mixed invocations like ``pytest tests benchmarks`` only
    items that actually live under this directory get the marker.
    """
    bench_dir = Path(__file__).parent
    for item in items:
        if bench_dir in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)


def bench_scale() -> Scale:
    """The scale used across the benchmark harness."""
    return Scale(
        name="bench",
        corpus=CorpusConfig(n_phishing=320, n_benign=200, seed=2025, hard_fraction=0.22),
        dataset_size=260,
        n_folds=3,
        n_runs=1,
        deep_folds=2,
        deep_runs=1,
        deep_scale=DeepModelScale.smoke(),
        seed=2025,
    )


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()


@pytest.fixture(scope="session")
def corpus(scale):
    return load_or_generate(scale.corpus, CORPUS_CACHE_DIR)[0]


@pytest.fixture(scope="session")
def dataset(corpus, scale) -> PhishingDataset:
    return PhishingDataset.build(corpus.records, target_size=scale.dataset_size, seed=scale.seed)


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def best_time(function, repeats=3):
    """Best-of-``repeats`` wall clock of ``function`` plus its last result.

    The fast-path benchmarks compare two implementations outside
    pytest-benchmark's fixture, so both sides share this one methodology.
    """
    import time

    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result
