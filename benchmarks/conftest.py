"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
("bench") scale so the whole harness completes on a CPU-only machine.  The
corpus and dataset are built once per session; heavyweight experiments are
executed exactly once inside ``benchmark.pedantic(rounds=1)``.
"""

from __future__ import annotations

import pytest

from repro.chain.generator import ContractCorpusGenerator, CorpusConfig
from repro.core.config import Scale
from repro.core.dataset import PhishingDataset
from repro.models.registry import DeepModelScale


def bench_scale() -> Scale:
    """The scale used across the benchmark harness."""
    return Scale(
        name="bench",
        corpus=CorpusConfig(n_phishing=320, n_benign=200, seed=2025, hard_fraction=0.22),
        dataset_size=260,
        n_folds=3,
        n_runs=1,
        deep_folds=2,
        deep_runs=1,
        deep_scale=DeepModelScale.smoke(),
        seed=2025,
    )


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()


@pytest.fixture(scope="session")
def corpus(scale):
    return ContractCorpusGenerator(scale.corpus).generate()


@pytest.fixture(scope="session")
def dataset(corpus, scale) -> PhishingDataset:
    return PhishingDataset.build(corpus.records, target_size=scale.dataset_size, seed=scale.seed)


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
