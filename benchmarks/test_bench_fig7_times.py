"""Bench: Fig. 7 — training and inference time of the best models per split."""

from conftest import run_once

from repro.experiments.scalability import run_scalability

MODELS = ["Random Forest", "SCSGuard", "ECA+EfficientNet"]


def test_bench_fig7_time_metrics(benchmark, dataset, scale):
    result = run_once(benchmark, run_scalability, dataset, scale, MODELS)
    rows = result.fig7_rows()
    assert len(rows) == 9
    # The paper's shape: the language model (SCSGuard) is by far the slowest.
    scs_time = result.time_series("SCSGuard", "train_time")[-1]
    rf_time = result.time_series("Random Forest", "train_time")[-1]
    assert scs_time > rf_time
    print("\n[Fig. 7] model              split  train_time(s)  inference_time(s)")
    for row in rows:
        print(f"  {row['model']:18s} {row['split']:5.2f}  {row['train_time']:12.3f}  {row['inference_time']:15.4f}")
