"""Bench: Fig. 7 — training and inference time of the best models per split."""

from conftest import run_once

from repro.experiments.scalability import SPLIT_RATIOS, run_scalability

MODELS = ["Random Forest", "SCSGuard", "ECA+EfficientNet"]


def test_bench_fig7_time_metrics(benchmark, dataset, scale):
    result = run_once(benchmark, run_scalability, dataset, scale, MODELS)
    rows = result.fig7_rows()
    # Deterministic shape checks: one row per (model, split) cell with both
    # time columns populated.  (Wall-clock *ordering* between models is a
    # qualitative paper claim surfaced via result.shape_checks(); asserting
    # it here made the benchmark flaky on loaded machines.)
    assert len(rows) == len(MODELS) * len(SPLIT_RATIOS)
    assert {row["model"] for row in rows} == set(MODELS)
    for row in rows:
        assert set(row) == {"model", "split", "train_time", "inference_time"}
        assert row["train_time"] >= 0.0
        assert row["inference_time"] >= 0.0
    for model in MODELS:
        assert len(result.time_series(model, "train_time")) == len(SPLIT_RATIOS)
        assert len(result.time_series(model, "inference_time")) == len(SPLIT_RATIOS)
    print("\n[Fig. 7] model              split  train_time(s)  inference_time(s)")
    for row in rows:
        print(f"  {row['model']:18s} {row['split']:5.2f}  {row['train_time']:12.3f}  {row['inference_time']:15.4f}")
