"""Bench: blob-backed span dispatch vs the pickled-chunk process path.

The zero-copy corpus plane's acceptance pin: cold multi-view extraction of
a blown-up bench corpus (>=4x the standard bench scale, built by tiling the
unique bytecodes with distinguishing suffix bytes) through the process
backend must run at least 2x faster when workers receive
``(blob_path, [(start, stop), ...])`` span lists over a shared memmap than
when the parent pickles raw byte chunks into the task queue.  The speedup
comes from three places that hold even on a single core: no per-code
pickle/unpickle of corpus bytes, one packed result array per chunk instead
of per-code objects, and the buffer kernels decoding each chunk in a few
vector passes.

Parent peak RSS is measured around both runs and printed — the span path
must not balloon the parent (it only ever touches the memmap lazily).
"""

import resource

import numpy as np

from conftest import best_time

from repro.features.batch import BatchFeatureService
from repro.features.corpus import CorpusBlob
from repro.features.store import corpus_fingerprint

#: How many suffix-tagged copies of each unique bytecode to add.  The bench
#: corpus has ~350 unique codes; 7 tiles push the blown-up corpus past the
#: 4x floor the ISSUE pins.
TILE_FACTOR = 7


def inflate_corpus(bytecodes):
    """Tile unique codes with distinguishing suffixes to >=4x bench scale."""
    unique = list({code for code in bytecodes if code})
    inflated = list(bytecodes)
    for tile in range(1, TILE_FACTOR + 1):
        suffix = bytes([tile, 0x5B])  # distinct tail keeps content keys apart
        inflated.extend(code + suffix for code in unique)
    return inflated


def extract_all(service, bytecodes):
    service.cache_clear()
    service.sequences(bytecodes)
    return service.count_matrix(bytecodes)


def peak_rss_mb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def test_bench_blob_spans_vs_pickled_chunks(benchmark, corpus, tmp_path):
    bytecodes = inflate_corpus([record.bytecode for record in corpus.records])
    assert len(bytecodes) >= 4 * len(corpus.records)

    blob = CorpusBlob.for_corpus(
        tmp_path, bytecodes, corpus_fingerprint(bytecodes)
    )

    pickled = BatchFeatureService(
        cache_size=len(bytecodes), max_workers=2, chunk_size=64, executor="process"
    )
    spans = BatchFeatureService(
        cache_size=len(bytecodes),
        max_workers=2,
        chunk_size=64,
        span_chunk_size=512,
        executor="process",
        corpus_blob=blob,
    )
    # Fork both pools before timing so neither side pays startup cost.
    pickled.warm_pool()
    spans.warm_pool()

    try:
        rss_before = peak_rss_mb()
        pickled_time, pickled_matrix = best_time(
            lambda: extract_all(pickled, bytecodes)
        )
        rss_after_pickled = peak_rss_mb()
        span_time, span_matrix = benchmark.pedantic(
            lambda: best_time(lambda: extract_all(spans, bytecodes)),
            rounds=1,
            iterations=1,
        )
        rss_after_spans = peak_rss_mb()
    finally:
        pickled.close()
        spans.close()

    assert np.array_equal(span_matrix, pickled_matrix)
    assert spans.kernel_passes == pickled.kernel_passes

    speedup = pickled_time / span_time
    total_bytes = sum(len(code) for code in bytecodes)
    print(
        f"\n[corpus-blob] {len(bytecodes)} contracts ({total_bytes / 1e6:.1f} MB): "
        f"pickled {pickled_time:.4f}s, spans {span_time:.4f}s "
        f"({speedup:.2f}x) | parent peak RSS {rss_before:.0f} -> "
        f"{rss_after_pickled:.0f} (pickled) -> {rss_after_spans:.0f} MB (spans)"
    )
    assert speedup >= 2.0, (
        f"blob span dispatch only {speedup:.2f}x over pickled chunks "
        f"(pickled {pickled_time:.4f}s, spans {span_time:.4f}s)"
    )
