"""Bench (ablation): throughput of the substrate stages.

Not a paper figure — measures the cost of the pipeline stages the paper's
§IV-F timing discussion depends on: disassembly, histogram extraction, image
encoding and single-contract inference latency of the best model.
"""

import numpy as np

from repro.core.bdm import BytecodeDisassemblerModule
from repro.features.histogram import OpcodeHistogramExtractor
from repro.features.image import R2D2ImageEncoder
from repro.models.hsc import make_random_forest_hsc


def test_bench_disassembly_throughput(benchmark, dataset):
    bdm = BytecodeDisassemblerModule()
    contracts = benchmark(bdm.disassemble_many, dataset.records[:200])
    assert len(contracts) == min(200, len(dataset))


def test_bench_histogram_extraction(benchmark, dataset):
    extractor = OpcodeHistogramExtractor().fit(dataset.bytecodes)
    features = benchmark(extractor.transform, dataset.bytecodes[:200])
    assert features.shape[0] == min(200, len(dataset))


def test_bench_image_encoding(benchmark, dataset):
    encoder = R2D2ImageEncoder(image_size=16)
    images = benchmark(encoder.transform, dataset.bytecodes[:100])
    assert images.shape[1:] == (3, 16, 16)


def test_bench_single_contract_inference_latency(benchmark, dataset):
    detector = make_random_forest_hsc(seed=0)
    detector.fit(dataset.bytecodes, dataset.labels)
    single = [dataset.bytecodes[0]]
    prediction = benchmark(detector.predict, single)
    assert prediction.shape == (1,)
