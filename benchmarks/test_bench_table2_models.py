"""Bench: Table II — averaged performance metrics of the detection models.

The full 16-model × 10-fold × 3-run protocol is far beyond a CPU benchmark
budget, so the bench regenerates the table at bench scale with one
representative model per family plus the remaining HSCs (which are cheap).
The qualitative shape asserted here matches §IV-D: an HSC wins, ESCORT is
the weakest, and the HSC family mean beats the vision family mean.
"""

from conftest import run_once

from repro.experiments.table2 import run_table2

BENCH_MODELS = [
    "Random Forest",
    "XGBoost",
    "LightGBM",
    "k-NN",
    "Logistic Regression",
    "SCSGuard",
    "ECA+EfficientNet",
    "ESCORT",
]


def test_bench_table2_model_comparison(benchmark, dataset, scale):
    result = run_once(benchmark, run_table2, dataset, scale, BENCH_MODELS)
    checks = result.shape_checks()
    assert checks["best_is_hsc"]
    assert checks["escort_is_weakest"]
    print("\n[Table II]")
    print(result.render())
    print("family means (accuracy):", {k: round(v, 3) for k, v in result.family_means().items()})
