"""Bench: warm-cache serving throughput vs. the naive per-request path.

Simulates a wallet-screening request stream (duplicate-heavy, as proxy
clones make real traffic) against a trained Random Forest detector two
ways:

* **naive** — the pre-serving deployment: one ``predict_proba([code])``
  call per request through a caching-disabled feature service, so every
  request pays extraction + a single-row model pass;
* **serving** — the same stream through :class:`~repro.serving
  .ScoringService` with a warm verdict cache (the stream was seen once),
  so repeats collapse onto content-hash lookups.

The acceptance bar of the serving refactor is asserted here: warm-cache
scoring must beat the naive per-request path by at least 2x (in practice it
is orders of magnitude faster).  The cold serving pass is also timed to
show what micro-batched vectorized scoring alone buys.
"""

import time

import numpy as np

from conftest import best_time
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.serving import ScoringService, ServingConfig


def _request_stream(dataset, n_requests: int = 200, seed: int = 9):
    """A duplicate-heavy request stream drawn from the bench dataset."""
    rng = np.random.default_rng(seed)
    codes = dataset.bytecodes
    picks = rng.integers(0, max(1, len(codes) // 4), size=n_requests)
    return [codes[int(i)] for i in picks]


def test_bench_serving_throughput(benchmark, dataset):
    train_service = BatchFeatureService()
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = train_service
    detector.fit(dataset.bytecodes, dataset.labels)

    requests = _request_stream(dataset)

    # Naive per-request path: per-call extraction (no caching anywhere).
    naive_service = BatchFeatureService(cache_size=0)
    detector.feature_service = naive_service

    def naive_pass():
        return [float(detector.predict_proba([code])[0, 1]) for code in requests]

    naive_time, naive_probabilities = best_time(naive_pass, repeats=3)

    # Serving path: shared warm feature cache + verdict cache.
    detector.feature_service = train_service
    service = ScoringService(detector, config=ServingConfig(max_batch=64))

    start = time.perf_counter()
    cold = service.score_batch(requests)
    cold_time = time.perf_counter() - start

    def warm_pass():
        return service.score_batch(requests)

    warm_verdicts = benchmark.pedantic(warm_pass, rounds=3, iterations=1)
    warm_time, _ = best_time(warm_pass, repeats=3)
    service.close()

    warm_probabilities = [v.probability for v in warm_verdicts]
    assert warm_probabilities == naive_probabilities
    assert all(v.cached for v in warm_verdicts)

    stats = service.stats()
    assert stats.verdict_hit_rate > 0.5
    # Serving telemetry is a delta over the service's lifetime: the stream
    # only contains fit-time contracts, so serving pays zero kernel passes.
    assert stats.kernel_passes == 0

    naive_rps = len(requests) / naive_time
    cold_rps = len(requests) / cold_time
    warm_rps = len(requests) / max(warm_time, 1e-9)
    print(
        f"\n[serving] {len(requests)} requests ({stats.verdict_entries} unique): "
        f"naive {naive_rps:,.0f} req/s, cold serving {cold_rps:,.0f} req/s, "
        f"warm serving {warm_rps:,.0f} req/s "
        f"({warm_rps / naive_rps:.0f}x naive); "
        f"feature hit rate {stats.feature_hit_rate:.0%}, "
        f"p50/p95 {stats.latency_ms_p50:.2f}/{stats.latency_ms_p95:.2f} ms"
    )

    # The acceptance criterion: warm-cache serving >= 2x the naive path.
    assert warm_rps >= 2 * naive_rps
