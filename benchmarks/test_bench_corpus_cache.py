"""Bench: the on-disk corpus cache makes the second build a cache hit."""

from conftest import CORPUS_CACHE_DIR

from repro.chain.corpus_cache import corpus_cache_path, load_or_generate


def test_bench_corpus_cache_second_build_hits(benchmark, scale, corpus):
    # The session `corpus` fixture already built (or loaded) the cache file,
    # so by the time any benchmark runs the cached copy must exist...
    assert corpus_cache_path(scale.corpus, CORPUS_CACHE_DIR).exists()
    # ...and a rebuild with the same config must be served from disk.
    rebuilt, from_cache = benchmark(load_or_generate, scale.corpus, CORPUS_CACHE_DIR)
    assert from_cache
    assert len(rebuilt.records) == len(corpus.records)
    assert all(
        (a.address, a.bytecode, a.label, a.deployed_month, a.family, a.metadata)
        == (b.address, b.bytecode, b.label, b.deployed_month, b.family, b.metadata)
        for a, b in zip(rebuilt.records, corpus.records)
    )
