"""Bench: Fig. 5 — performance metrics of the best models per data split."""

from conftest import run_once

from repro.experiments.scalability import run_scalability

MODELS = ["Random Forest", "SCSGuard", "ECA+EfficientNet"]


def test_bench_fig5_scalability_metrics(benchmark, dataset, scale):
    result = run_once(benchmark, run_scalability, dataset, scale, MODELS)
    assert len(result.fig5_rows()) == 9
    print("\n[Fig. 5] model              split  accuracy  precision  recall   f1")
    for row in result.fig5_rows():
        print(f"  {row['model']:18s} {row['split']:5.2f}  {row['accuracy']:.3f}     "
              f"{row['precision']:.3f}     {row['recall']:.3f}   {row['f1']:.3f}")
    print("shape checks:", result.shape_checks())
