"""Bench: Fig. 2 — phishing contracts per month (obtained vs unique)."""

from repro.experiments.fig2 import run_fig2


def test_bench_fig2_monthly_series(benchmark, scale, corpus):
    series = benchmark(run_fig2, scale, corpus)
    rows = series.rows()
    assert len(rows) == 13
    assert series.total_obtained >= series.total_unique
    assert series.duplication_ratio > 1.0
    print("\n[Fig. 2] month  obtained  unique")
    for row in rows:
        print(f"  {row['month']}  {row['obtained']:8d}  {row['unique']:6d}")
    print(f"  total obtained={series.total_obtained} unique={series.total_unique} "
          f"duplication x{series.duplication_ratio:.2f}")
