"""Bench: Table I — the Shanghai opcode registry."""

from repro.experiments.table1 import run_table1, summarize_table1


def test_bench_table1_opcode_table(benchmark):
    rows = benchmark(run_table1)
    assert len(rows) == 144
    summary = summarize_table1()
    assert summary["first"]["name"] == "STOP"
    assert summary["last"]["name"] == "SELFDESTRUCT"
    print("\n[Table I] opcodes:", summary["n_opcodes"], "| ADD gas:", summary["add_gas"],
          "| SELFDESTRUCT gas:", summary["selfdestruct_gas"])
