"""Bench: warm-cache monitoring throughput vs. naive per-contract scoring.

Replays the same simulated chain two ways:

* **naive** — the pre-monitor deployment: walk every confirmed block and
  score each contract creation with one ``predict_proba([code])`` call
  through a caching-disabled feature service — per-contract extraction and
  a single-row model pass, no verdict reuse;
* **monitored** — the same chain through :class:`~repro.monitor
  .MonitorPipeline`: block windows batched into vectorized
  ``score_batch`` passes over a warm :class:`~repro.serving
  .ScoringService` (the chain was monitored once before, so proxy-clone
  waves and re-deployments collapse onto verdict-cache hits).

The acceptance bar of the monitoring subsystem is asserted here: warm-cache
monitoring must process contracts at least 2x as fast as the naive
per-contract path.  The cold monitoring pass is timed too, showing what
window batching alone buys before any cache is warm.
"""

import time

from conftest import best_time
from repro.chain.blocks import BlockStream, BlockStreamConfig
from repro.chain.rpc import SimulatedEthereumNode
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor import MonitorConfig, MonitorPipeline
from repro.serving import ScoringService, ServingConfig

N_BLOCKS = 60
CONFIRMATIONS = 2


def test_bench_monitor_throughput(benchmark, dataset):
    train_service = BatchFeatureService()
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = train_service
    detector.fit(dataset.bytecodes, dataset.labels)

    node = SimulatedEthereumNode()
    node.mine(
        BlockStream(
            BlockStreamConfig(seed=71, deploys_per_block=4.0, phishing_share=0.3)
        ),
        N_BLOCKS,
    )
    confirmed = range(N_BLOCKS - CONFIRMATIONS)
    deployments = [
        tx for number in confirmed for tx in node.get_block(number).transactions
    ]
    monitor_config = MonitorConfig(confirmations=CONFIRMATIONS, poll_blocks=8)

    # Naive per-contract path: per-call extraction, no caching anywhere.
    naive_service = BatchFeatureService(cache_size=0)
    detector.feature_service = naive_service

    def naive_pass():
        return [
            float(detector.predict_proba([tx.bytecode])[0, 1]) for tx in deployments
        ]

    naive_time, naive_probabilities = best_time(naive_pass, repeats=3)

    # Monitored path: one long-lived service, repeated monitoring passes.
    detector.feature_service = train_service
    service = ScoringService(detector, config=ServingConfig(max_batch=64))

    def monitor_pass():
        pipeline = MonitorPipeline(service, node, config=monitor_config)
        pipeline.run()
        return pipeline

    start = time.perf_counter()
    cold = monitor_pass()
    cold_time = time.perf_counter() - start
    kernel_passes_after_cold = service.stats().kernel_passes

    warm_pipeline = benchmark.pedantic(monitor_pass, rounds=3, iterations=1)
    warm_time, _ = best_time(monitor_pass, repeats=3)
    stats = warm_pipeline.stats()
    service.close()

    # The monitor scored exactly the confirmed deployments, with the same
    # probabilities the naive path produced.
    assert stats.contracts_scanned == len(deployments)
    alert_probabilities = {
        (alert.block_number, alert.tx_hash): alert.probability
        for alert in warm_pipeline.sink.alerts
    }
    threshold = service.decision_threshold
    for tx, probability in zip(deployments, naive_probabilities):
        block_number = int(node.get_receipt(tx.tx_hash)["blockNumber"], 16)
        if probability >= threshold:
            assert alert_probabilities[(block_number, tx.tx_hash)] == probability
    # Warm monitoring is pure verdict-cache traffic: the kernel-pass counter
    # snapshotted right after the cold pass did not move across four warm
    # monitoring passes of the same chain.
    assert stats.service.kernel_passes == kernel_passes_after_cold
    assert cold.stats().contracts_scanned == len(deployments)

    naive_cps = len(deployments) / naive_time
    cold_cps = len(deployments) / cold_time
    warm_cps = len(deployments) / max(warm_time, 1e-9)
    print(
        f"\n[monitor] {len(deployments)} deployments over "
        f"{stats.blocks_scanned} blocks: naive {naive_cps:,.0f} contracts/s, "
        f"cold monitoring {cold_cps:,.0f} contracts/s, "
        f"warm monitoring {warm_cps:,.0f} contracts/s "
        f"({warm_cps / naive_cps:.0f}x naive); "
        f"alert rate {stats.alert_rate:.0%}, "
        f"scoring p50/p95 {stats.block_latency_ms_p50:.2f}/"
        f"{stats.block_latency_ms_p95:.2f} ms/block"
    )

    # The acceptance criterion: warm-cache monitoring >= 2x the naive path.
    assert warm_cps >= 2 * naive_cps
