"""Bench: Fig. 8 — time-resistance analysis with AUT."""

from conftest import run_once

from repro.core.dataset import build_temporal_split
from repro.experiments.time_resistance import run_time_resistance

MODELS = ["Random Forest", "SCSGuard"]


def test_bench_fig8_time_resistance(benchmark, corpus, scale):
    split = build_temporal_split(corpus.records, seed=scale.seed)
    result = run_once(benchmark, run_time_resistance, split, scale, MODELS)
    aut = result.aut()
    assert set(aut) == set(MODELS)
    assert all(0.0 <= value <= 1.0 for value in aut.values())
    print(f"\n[Fig. 8] {split.n_periods} monthly test periods "
          f"(train {len(split.train)} contracts up to 2024-01)")
    for model in MODELS:
        curve = result.f1_curve(model)
        series = " ".join(f"{value:.2f}" for value in curve.values)
        print(f"  {model:15s} F1 per period: {series}  AUT={aut[model]:.2f}")
