"""Bench: Fig. 9 — SHAP values of the Random Forest HSC."""

from conftest import run_once

from repro.experiments.interpretability import run_fig9


def test_bench_fig9_shap_values(benchmark, dataset, scale):
    result = run_once(
        benchmark, run_fig9, dataset, scale, 24, 6, 20
    )
    rows = result.fig9_rows(k=20)
    assert len(rows) == 20
    assert all(row["mean_abs_shap"] >= 0 for row in rows)
    print("\n[Fig. 9] opcode           mean|SHAP|   mean SHAP   P(pushes to phishing)")
    for row in rows:
        print(f"  {row['opcode']:16s} {row['mean_abs_shap']:9.4f}  {row['mean_shap']:+9.4f}  "
              f"{row['pushes_towards_phishing']:8.2f}")
