"""Bench: Fig. 6 — critical difference diagram of the scalability study."""

from conftest import run_once

from repro.experiments.scalability import run_scalability

MODELS = ["Random Forest", "SCSGuard", "ECA+EfficientNet"]


def test_bench_fig6_critical_difference(benchmark, dataset, scale):
    result = run_scalability(dataset, scale, MODELS)

    def build_cdd():
        return {metric: result.critical_difference(metric) for metric in ("accuracy", "f1", "precision", "recall")}

    diagrams = run_once(benchmark, build_cdd)
    assert set(diagrams) == {"accuracy", "f1", "precision", "recall"}
    print("\n[Fig. 6]")
    for metric, cdd in diagrams.items():
        print(f"-- {metric} --")
        print(cdd.render())
    print("Cliff's delta (accuracy):", {k: round(v, 3) for k, v in result.cliffs_deltas("accuracy").items()})
