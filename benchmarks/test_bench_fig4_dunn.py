"""Bench: Fig. 4 — Dunn's pairwise test between model metrics."""

import numpy as np

from conftest import run_once

from repro.core.mem import ModelEvaluationModule
from repro.experiments.posthoc import run_posthoc

# ESCORT and the β variants are excluded from the post-hoc analysis, as in
# the paper; SCSGuard provides the cross-family comparison.
MODELS = ["Random Forest", "XGBoost", "k-NN", "Logistic Regression", "SCSGuard"]


def test_bench_fig4_dunn_pairwise(benchmark, dataset, scale):
    mem = ModelEvaluationModule(scale=scale)
    suite = mem.evaluate_suite(MODELS, dataset)
    experiment = run_once(benchmark, run_posthoc, suite, MODELS)
    matrix = experiment.dunn_matrix("accuracy")
    assert matrix.shape == (len(MODELS), len(MODELS))
    assert np.allclose(matrix, matrix.T)
    fractions = experiment.significant_fractions()
    print("\n[Fig. 4] adjusted-p matrix (accuracy):")
    header = "            " + "  ".join(f"{name[:10]:>10s}" for name in MODELS)
    print(header)
    for name, row in zip(MODELS, matrix):
        print(f"{name[:10]:>10s}  " + "  ".join(f"{value:10.3f}" for value in row))
    print("significant fractions:", {k: {kk: round(vv, 3) for kk, vv in v.items()} for k, v in fractions.items()})
