"""Bench: shared-service multi-chain monitoring vs. independent pipelines.

Cross-chain drainer campaigns are clone-heavy: the same scam bytecodes land
on every chain within minutes (here: three chains generated from the same
seed under distinct chain ids — identical deployment *content*, disjoint
hashes and addresses).  Replays that workload two ways:

* **independent** — the obvious deployment: one
  :class:`~repro.monitor.MonitorPipeline` per chain, each with its *own*
  :class:`~repro.serving.ScoringService` and its own feature cache, so
  every chain pays full extraction and model passes for bytecodes its
  siblings already scored;
* **shared** — :class:`~repro.monitor.MultiChainMonitor`: the same three
  chains fanned into **one** service, so chains two and three collapse
  onto content-hash verdict-cache hits of chain one's work.

The acceptance bar of the multi-chain subsystem is asserted here: on the
clone-heavy workload the shared-service supervisor must monitor N chains at
least 2x as fast as N independent pipelines, while producing the identical
per-chain verdicts.
"""

import time

from conftest import best_time
from repro.chain.blocks import BlockStream, BlockStreamConfig
from repro.chain.rpc import SimulatedEthereumNode
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.monitor import MonitorConfig, MonitorPipeline, MultiChainConfig, MultiChainMonitor
from repro.serving import ScoringService, ServingConfig

N_CHAINS = 3
N_BLOCKS = 40
CONFIRMATIONS = 2


def _mine_clone_chains():
    """Same seed, distinct chain ids: identical content, distinct chains."""
    nodes = []
    for chain_id in range(1, N_CHAINS + 1):
        config = BlockStreamConfig(
            chain_id=chain_id, seed=71, deploys_per_block=4.0, phishing_share=0.3
        )
        node = SimulatedEthereumNode(chain_id=chain_id)
        node.mine(BlockStream(config), N_BLOCKS)
        nodes.append(node)
    return nodes


def test_bench_multichain_shared_service(benchmark, dataset):
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = BatchFeatureService()
    detector.fit(dataset.bytecodes, dataset.labels)

    nodes = _mine_clone_chains()
    monitor_config = MonitorConfig(confirmations=CONFIRMATIONS, poll_blocks=8)
    per_chain_deployments = sum(
        len(nodes[0].get_block(number).transactions)
        for number in range(N_BLOCKS - CONFIRMATIONS)
    )
    total_deployments = N_CHAINS * per_chain_deployments

    # Independent pipelines: a fresh service AND a fresh feature cache per
    # chain, so nothing carries over between chains (or between repeats).
    def independent_pass():
        verdicts = {}
        for node in nodes:
            detector.feature_service = BatchFeatureService()
            with ScoringService(
                detector, config=ServingConfig(max_batch=64)
            ) as service:
                pipeline = MonitorPipeline(service, node, config=monitor_config)
                pipeline.run()
                for alert in pipeline.sink.alerts:
                    verdicts[(alert.chain_id, alert.tx_hash)] = alert.probability
        return verdicts

    independent_time, independent_verdicts = best_time(independent_pass, repeats=3)

    # The shared-service supervisor, cold per repeat (fresh service and
    # feature cache each time: the speedup measured is *cross-chain* reuse
    # within one pass, not warm-cache reuse between repeats).
    def shared_pass():
        detector.feature_service = BatchFeatureService()
        with ScoringService(detector, config=ServingConfig(max_batch=64)) as service:
            monitor = MultiChainMonitor(
                service,
                nodes,
                config=MultiChainConfig(
                    n_chains=N_CHAINS, monitor=monitor_config, impersonation=False
                ),
            )
            monitor.run()
            return monitor

    start = time.perf_counter()
    first = shared_pass()
    first_time = time.perf_counter() - start
    benchmark.pedantic(shared_pass, rounds=2, iterations=1)
    shared_time, shared_monitor = best_time(shared_pass, repeats=3)
    shared_time = min(shared_time, first_time)
    stats = shared_monitor.stats()

    # Identical coverage and identical verdicts, chain by chain.
    assert stats.contracts_scanned == total_deployments
    shared_verdicts = {
        (alert.chain_id, alert.tx_hash): alert.probability
        for alert in shared_monitor.sink.alerts
    }
    assert shared_verdicts == independent_verdicts
    # The mechanism: chains 2..N are verdict-cache traffic, so the shared
    # service ran the kernels for one chain's content only.
    assert stats.service.verdict_hit_rate >= (N_CHAINS - 1) / N_CHAINS * 0.95

    independent_cps = total_deployments / independent_time
    shared_cps = total_deployments / shared_time
    print(
        f"\n[multichain] {N_CHAINS} chains x {per_chain_deployments} "
        f"deployments (clone-heavy): independent {independent_cps:,.0f} "
        f"contracts/s, shared service {shared_cps:,.0f} contracts/s "
        f"({shared_cps / independent_cps:.1f}x); verdict hit rate "
        f"{stats.service.verdict_hit_rate:.0%}, kernel passes "
        f"{stats.service.kernel_passes}"
    )

    # The acceptance criterion: shared-service monitoring >= 2x independent.
    assert shared_cps >= 2 * independent_cps
