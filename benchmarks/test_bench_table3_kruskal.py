"""Bench: Table III — Kruskal–Wallis test of the model metrics."""

from conftest import run_once

from repro.core.mem import ModelEvaluationModule
from repro.experiments.posthoc import run_posthoc

MODELS = ["Random Forest", "XGBoost", "k-NN", "Logistic Regression", "SVM"]


def test_bench_table3_kruskal_wallis(benchmark, dataset, scale):
    mem = ModelEvaluationModule(scale=scale)
    suite = mem.evaluate_suite(MODELS, dataset)
    experiment = run_once(benchmark, run_posthoc, suite, MODELS)
    rows = experiment.table3_rows()
    assert len(rows) == 4
    assert all(row["p_adj"] >= row["p"] - 1e-12 for row in rows)
    print("\n[Table III]")
    print(experiment.render_table3())
