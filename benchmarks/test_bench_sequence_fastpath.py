"""Bench: vectorized sequence fast path vs. the per-instruction extractors.

Measures end-to-end tokenizer and frequency-image extraction over the bench
corpus on three paths — legacy per-instruction, fast uncached, fast with a
warm shared cache — asserting bit-identical outputs and the fast path's
throughput advantage.
"""

import numpy as np

from conftest import best_time

from repro.features.batch import BatchFeatureService
from repro.features.image import FrequencyImageEncoder
from repro.features.tokenizer import OpcodeTokenizer

#: Minimum acceptable speedup of the uncached fast path over the legacy
#: path (conservative: loaded machines must not flake).
MIN_SPEEDUP = 2.0


def test_bench_tokenizer_fastpath(benchmark, dataset):
    bytecodes = dataset.bytecodes

    legacy = OpcodeTokenizer(use_fast_path=False)
    legacy_time, legacy_ids = best_time(lambda: legacy.transform(bytecodes))

    fast_time, fast_ids = best_time(
        lambda: OpcodeTokenizer(
            service=BatchFeatureService(cache_size=0)
        ).transform(bytecodes)
    )

    warm_service = BatchFeatureService()
    warm = OpcodeTokenizer(service=warm_service)
    warm.transform(bytecodes)  # populate the sequence cache
    warm_ids = benchmark.pedantic(warm.transform, args=(bytecodes,), rounds=3, iterations=1)

    assert np.array_equal(legacy_ids, fast_ids)
    assert np.array_equal(legacy_ids, warm_ids)
    assert warm_service.sequence_stats.hits > 0
    assert warm_service.kernel_passes == len(warm_service)

    speedup = legacy_time / fast_time
    print(
        f"\n[sequence fast path] tokenizer over {len(bytecodes)} contracts: "
        f"legacy {legacy_time:.4f}s, fast {fast_time:.4f}s ({speedup:.1f}x), "
        f"warm hit rate {warm_service.sequence_stats.hit_rate:.0%}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"tokenizer fast path only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x)"
    )


def test_bench_frequency_image_fastpath(benchmark, dataset):
    bytecodes = dataset.bytecodes

    legacy = FrequencyImageEncoder(image_size=16, use_fast_path=False)
    legacy_time, legacy_images = best_time(lambda: legacy.fit_transform(bytecodes))

    def fast_cold():
        return FrequencyImageEncoder(
            image_size=16, service=BatchFeatureService(cache_size=0)
        ).fit_transform(bytecodes)

    fast_time, fast_images = best_time(fast_cold)

    warm_service = BatchFeatureService()
    warm = FrequencyImageEncoder(image_size=16, service=warm_service)
    warm.fit(bytecodes)
    warm_images = benchmark.pedantic(warm.transform, args=(bytecodes,), rounds=3, iterations=1)

    assert np.array_equal(legacy_images, fast_images)
    assert np.array_equal(legacy_images, warm_images)
    assert warm_service.sequence_stats.hits > 0

    speedup = legacy_time / fast_time
    print(
        f"\n[sequence fast path] freq-image over {len(bytecodes)} contracts: "
        f"legacy {legacy_time:.4f}s, fast {fast_time:.4f}s ({speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"freq-image fast path only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x)"
    )
