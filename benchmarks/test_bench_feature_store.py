"""Bench: persistent feature store — cold build vs warm reload.

Builds the full multi-view store (sequences + counts) for the bench dataset
once (cold), then reopens it from disk (warm), asserting the warm session
performs zero kernel passes and serves bit-identical matrices.  The printed
ratio is the wall-clock a repeated experiment run saves on extraction.
"""

import time

import numpy as np

from repro.features.store import FeatureStore


def test_bench_feature_store_warm_start(benchmark, dataset, tmp_path):
    bytecodes = dataset.bytecodes
    store = FeatureStore(tmp_path)

    start = time.perf_counter()
    with store.session(bytecodes) as cold:
        cold_matrix = cold.service.count_matrix(bytecodes)
    cold_time = time.perf_counter() - start
    assert not cold.warm_start
    assert cold.saved
    assert cold.kernel_passes > 0

    def warm_run():
        with store.session(bytecodes) as warmed:
            return warmed, warmed.service.count_matrix(bytecodes)

    warmed, warm_matrix = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert warmed.warm_start
    assert warmed.kernel_passes == 0
    assert warmed.hit_rate == 1.0
    assert np.array_equal(cold_matrix, warm_matrix)

    start = time.perf_counter()
    warm_run()
    warm_time = time.perf_counter() - start
    size_kb = cold.path.stat().st_size / 1024
    print(
        f"\n[feature store] {len(bytecodes)} contracts, "
        f"{warmed.entries_loaded} unique entries, file {size_kb:,.0f} KiB: "
        f"cold {cold_time:.4f}s, warm {warm_time:.4f}s "
        f"({cold_time / max(warm_time, 1e-9):.1f}x), "
        f"store file hits/misses {store.file_hits}/{store.file_misses}"
    )
