"""Bench: vectorized opcode-count fast path vs. the per-instruction extractor.

Measures end-to-end histogram extraction (`fit_transform`) over the bench
corpus on three paths — legacy per-instruction, fast uncached, fast with a
warm cache — asserting bit-identical feature matrices and the fast path's
throughput advantage.
"""

import numpy as np

from conftest import best_time

from repro.features.batch import BatchFeatureService
from repro.features.histogram import OpcodeHistogramExtractor

#: Minimum acceptable speedup of the uncached fast path over the legacy path.
MIN_SPEEDUP = 5.0


def test_bench_extraction_fastpath(benchmark, dataset):
    bytecodes = dataset.bytecodes

    legacy = OpcodeHistogramExtractor(use_fast_path=False)
    legacy_time, legacy_features = best_time(lambda: legacy.fit_transform(bytecodes))

    def fast_cold():
        return OpcodeHistogramExtractor(
            service=BatchFeatureService(cache_size=0)
        ).fit_transform(bytecodes)

    fast_time, fast_features = best_time(fast_cold)

    warm_service = BatchFeatureService()
    warm = OpcodeHistogramExtractor(service=warm_service)
    warm.fit(bytecodes)  # populate the cache
    warm_features = benchmark.pedantic(
        warm.transform, args=(bytecodes,), rounds=3, iterations=1
    )

    assert np.array_equal(legacy_features, fast_features)
    assert np.array_equal(legacy_features, warm_features)
    assert legacy.feature_names() == warm.feature_names()
    assert warm_service.stats.hits > 0

    speedup = legacy_time / fast_time
    contracts_per_second = len(bytecodes) / fast_time
    print(
        f"\n[fast path] {len(bytecodes)} contracts: legacy {legacy_time:.4f}s, "
        f"fast {fast_time:.4f}s ({speedup:.1f}x, {contracts_per_second:,.0f} contracts/s), "
        f"warm-cache hit rate {warm_service.stats.hit_rate:.0%}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast path only {speedup:.1f}x faster than legacy (need >= {MIN_SPEEDUP}x)"
    )
