"""Bench: cached static analysis vs. cold per-contract re-analysis.

Measures :meth:`repro.analysis.StaticAnalyzer.analyze_many` over the bench
corpus on two paths — a cold loop constructing a fresh analyzer per contract
(no report cache, no shared sequence cache) and the warm batch path where
the report LRU plus the feature service's fastcount-cached OpcodeSequences
are already populated — asserting identical reports and the pinned speedup.
"""

from conftest import best_time

from repro.analysis import StaticAnalyzer
from repro.features.batch import BatchFeatureService

#: Minimum acceptable speedup of warm cached analysis over the cold path.
MIN_SPEEDUP = 2.0


def test_bench_analysis_cache(benchmark, dataset):
    bytecodes = dataset.bytecodes

    def cold():
        reports = []
        for code in bytecodes:
            analyzer = StaticAnalyzer(features=BatchFeatureService(cache_size=0))
            reports.append(analyzer.analyze(code))
        return reports

    cold_time, cold_reports = best_time(cold)

    warm_analyzer = StaticAnalyzer(features=BatchFeatureService())
    warm_analyzer.analyze_many(bytecodes)  # populate report + sequence caches
    warm_reports = benchmark.pedantic(
        warm_analyzer.analyze_many, args=(bytecodes,), rounds=3, iterations=1
    )
    warm_time, _ = best_time(lambda: warm_analyzer.analyze_many(bytecodes))

    assert len(warm_reports) == len(cold_reports)
    for cold_report, warm_report in zip(cold_reports, warm_reports):
        assert cold_report.to_dict() == warm_report.to_dict()
    assert warm_analyzer.stats().cache_hits > 0

    speedup = cold_time / warm_time
    contracts_per_second = len(bytecodes) / warm_time
    print(
        f"\n[analysis] {len(bytecodes)} contracts: cold {cold_time:.4f}s, "
        f"warm {warm_time:.4f}s ({speedup:.1f}x, "
        f"{contracts_per_second:,.0f} contracts/s, "
        f"hit rate {warm_analyzer.stats().hit_rate:.0%})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"cached analysis only {speedup:.1f}x faster than cold (need >= {MIN_SPEEDUP}x)"
    )
