"""Bench: gateway behaviour at saturation — bounded latency, fast shed.

Drives the asyncio HTTP gateway with ~1,200 concurrent in-process clients
(raw asyncio connections on a private client loop) against a deliberately
slowed detector, so offered load far exceeds the ``max_inflight`` admission
bound.  A production front door must degrade by *shedding*, not by
*queueing*: excess requests get an immediate 429 + ``Retry-After`` while
admitted requests complete with bounded latency.

Pinned here (the acceptance criteria of the gateway PR):

* every client gets an HTTP answer — 200 or a fast 429, no drops, no
  connection errors;
* overload is shed (both 200s and 429s are observed, with 429 the
  majority at 18x oversubscription);
* ``peak_inflight`` never exceeds ``max_inflight`` — the scoring queue is
  bounded, so there is no unbounded queue growth behind the listener;
* p99 latency of *admitted* requests stays bounded (they ride the
  micro-batcher, not a 1,200-deep backlog) and p99 of *shed* responses is
  fast — rejection must cost admission-control time, not scoring time;
* the burst leaves no poison behind: a follow-up request scores 200.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from conftest import run_once
from repro.features.batch import BatchFeatureService
from repro.models.hsc import make_random_forest_hsc
from repro.serving import (
    BackgroundGateway,
    Gateway,
    GatewayConfig,
    ScoringService,
    ServingConfig,
)

N_CLIENTS = 1200
MAX_INFLIGHT = 64
#: Per-model-pass artificial delay making saturation deterministic: admitted
#: requests are slow enough that the burst always overruns ``max_inflight``.
MODEL_DELAY_S = 0.02


class SlowDetector:
    """Wrap a fitted detector, delaying every vectorized model pass."""

    def __init__(self, detector, delay_s: float):
        self._detector = detector
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._detector, name)

    def predict_proba(self, bytecodes):
        time.sleep(self._delay_s)
        return self._detector.predict_proba(bytecodes)


async def _one_client(index: int, port: int, payload: bytes) -> tuple:
    """One closed-loop client: connect, send one request, read the answer."""
    start = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = (
            b"POST /score/bytecode HTTP/1.1\r\n"
            b"host: bench\r\n"
            b"connection: close\r\n"
            + f"x-client-id: client-{index}\r\n".encode()
            + f"content-length: {len(payload)}\r\n\r\n".encode()
        )
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    status = int(raw.split(b" ", 2)[1])
    return status, (time.perf_counter() - start) * 1000.0


async def _burst(port: int, payloads) -> list:
    clients = [
        _one_client(index, port, payloads[index % len(payloads)])
        for index in range(N_CLIENTS)
    ]
    return await asyncio.gather(*clients)


def test_bench_gateway_saturation(benchmark, dataset):
    service_cache = BatchFeatureService()
    detector = make_random_forest_hsc(seed=3)
    detector.feature_service = service_cache
    detector.fit(dataset.bytecodes, dataset.labels)

    payloads = [
        ('{"bytecode": "0x%s"}' % code.hex()).encode()
        for code in dataset.bytecodes[:64]
    ]

    # Verdict cache off: every admitted request pays the micro-batcher and a
    # (slowed) model pass — saturation, not cache-hit throughput.
    serving = ServingConfig(max_batch=64, max_wait_ms=1.0, verdict_cache_size=0)
    config = GatewayConfig(
        backlog=2048,
        max_connections=4 * N_CLIENTS,
        max_inflight=MAX_INFLIGHT,
        request_timeout_s=30.0,
    )
    slow = SlowDetector(detector, MODEL_DELAY_S)
    with ScoringService(slow, config=serving) as service:
        gateway = Gateway(service, config=config)
        with BackgroundGateway(gateway) as running:
            port = running.port
            results = run_once(benchmark, lambda: asyncio.run(_burst(port, payloads)))

            # The burst must leave no poison behind: the very next request
            # (same connection budget, cold verdict cache) scores cleanly.
            follow_up = asyncio.run(_one_client(0, port, payloads[0]))
            stats = gateway.stats()

    statuses = np.array([status for status, _ in results])
    latencies = np.array([latency for _, latency in results])
    ok = statuses == 200
    shed = statuses == 429

    # Every client got an HTTP answer: 200 or a fast 429, nothing else.
    assert int(ok.sum()) + int(shed.sum()) == N_CLIENTS
    assert int(ok.sum()) > 0
    assert int(shed.sum()) > 0
    assert follow_up[0] == 200

    # Bounded queue: admission never let more than max_inflight through.
    assert stats.peak_inflight <= MAX_INFLIGHT
    assert stats.shed == int(shed.sum())
    assert stats.timeouts == 0

    p99_ok = float(np.percentile(latencies[ok], 99))
    p99_shed = float(np.percentile(latencies[shed], 99))
    print(
        f"\n[gateway] {N_CLIENTS} concurrent clients vs max_inflight={MAX_INFLIGHT}: "
        f"{int(ok.sum())} scored, {int(shed.sum())} shed (429); "
        f"admitted p50/p99 {np.percentile(latencies[ok], 50):.0f}/{p99_ok:.0f} ms, "
        f"shed p50/p99 {np.percentile(latencies[shed], 50):.0f}/{p99_shed:.0f} ms; "
        f"peak inflight {stats.peak_inflight}"
    )

    # Admitted requests ride the micro-batcher, not a 1,200-deep queue: p99
    # stays far below what serial draining of the full burst would cost.
    # Shed responses must be fast failures — admission cost, not scoring
    # cost.  Bounds are generous for a single shared CPU core.
    assert p99_ok < 15_000.0
    assert p99_shed < 5_000.0
